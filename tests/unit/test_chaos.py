"""Chaos layer: deterministic plans, retry policy, fault wrappers.

The core guarantee under test is **replay determinism**: every chaos
decision comes from a named PRNG stream seeded only by the plan seed
and the site name, so the same plan driven through the same call
sequence fires the same faults — regardless of what other sites drew
in between.  The wrapper tests then prove each fault actually produces
the failure it models (a reset that aborts, a torn write that persists
a prefix, a stale read that serves the previous entry) and that the
:class:`~repro.stores.DirectoryCheckpointStore` generation fallback
keeps working underneath the chaos wrapper.
"""

from __future__ import annotations

import asyncio
import json
import random
import subprocess
import sys

import pytest

from repro import chaos
from repro.chaos import (
    ChaosChannel,
    ChaosCheckpointStore,
    FaultInjector,
    FaultPlan,
    ProcessFaults,
    RetryPolicy,
    StoreFaults,
    TransportFaults,
    is_retryable,
)
from repro.errors import (
    CheckpointStoreError,
    ParameterError,
    ProtocolError,
    RemoteError,
    ReproError,
)
from repro.stores import DirectoryCheckpointStore, MemoryCheckpointStore

STATE = {"kind": "protection-session", "format_version": 1,
         "config": {"encoding": "initial"}, "scan": {"counters": {}}}


class TestFaultPlan:
    def test_json_roundtrip_is_exact(self, tmp_path):
        plan = FaultPlan(
            seed=99,
            client_transport=TransportFaults(latency_rate=0.2,
                                             latency_ms=(1.0, 4.0),
                                             reset_rate=0.1,
                                             truncate_rate=0.05),
            server_transport=TransportFaults(drop_rate=0.02),
            store=StoreFaults(torn_write_rate=0.1, io_error_rate=0.2,
                              stale_read_rate=0.3),
            process=ProcessFaults(crash_after_pushes=(5, 9),
                                  exit_code=71))
        path = tmp_path / "plan.json"
        plan.dump(path)
        assert FaultPlan.load(path) == plan

    def test_to_dict_is_versioned(self):
        payload = FaultPlan(seed=1).to_dict()
        assert payload["kind"] == "fault-plan"
        assert payload["format_version"] == 1

    def test_defaults_are_all_quiet(self):
        plan = FaultPlan()
        assert not plan.client_transport.active()
        assert not plan.server_transport.active()
        assert not plan.store.active()
        assert not plan.process.active()

    @pytest.mark.parametrize("rate", [-0.1, 1.5, "lots", None])
    def test_bad_rates_rejected(self, rate):
        with pytest.raises(ParameterError, match="rate"):
            TransportFaults(reset_rate=rate)
        with pytest.raises(ParameterError, match="rate"):
            StoreFaults(torn_write_rate=rate)

    def test_bad_crash_schedule_rejected(self):
        with pytest.raises(ParameterError, match="crash_after_pushes"):
            ProcessFaults(crash_after_pushes=(5, 2))
        with pytest.raises(ParameterError, match="crash_after_pushes"):
            ProcessFaults(crash_after_pushes=(-1, 3))
        with pytest.raises(ParameterError, match="exit_code"):
            ProcessFaults(crash_after_pushes=(1, 1), exit_code=0)

    def test_unknown_top_level_field_rejected(self):
        with pytest.raises(ParameterError, match="unknown"):
            FaultPlan.from_dict({"kind": "fault-plan", "seed": 1,
                                 "surprise": {}})

    def test_unknown_section_field_rejected(self):
        with pytest.raises(ParameterError, match="store"):
            FaultPlan.from_dict({"kind": "fault-plan",
                                 "store": {"bitrot_rate": 0.5}})

    def test_wrong_kind_rejected(self):
        with pytest.raises(ParameterError, match="kind"):
            FaultPlan.from_dict({"kind": "not-a-plan"})

    def test_newer_version_rejected(self):
        with pytest.raises(ParameterError, match="newer"):
            FaultPlan.from_dict({"kind": "fault-plan",
                                 "format_version": 2})

    def test_missing_file_is_clean_error(self, tmp_path):
        with pytest.raises(ParameterError, match="not found"):
            FaultPlan.load(tmp_path / "nope.json")

    def test_garbage_file_is_clean_error(self, tmp_path):
        path = tmp_path / "plan.json"
        path.write_text("{not json")
        with pytest.raises(ParameterError, match="cannot read"):
            FaultPlan.load(path)


class TestNamedStreams:
    def test_same_seed_same_site_same_draws(self):
        a = FaultInjector(FaultPlan(seed=7))
        b = FaultInjector(FaultPlan(seed=7))
        assert [a.rng("client.read").random() for _ in range(50)] \
            == [b.rng("client.read").random() for _ in range(50)]

    def test_sites_are_independent(self):
        """Draining one site's stream never perturbs another's."""
        quiet = FaultInjector(FaultPlan(seed=7))
        noisy = FaultInjector(FaultPlan(seed=7))
        for _ in range(1000):
            noisy.rng("server.store").random()  # unrelated traffic
        assert [quiet.rng("client.read").random() for _ in range(20)] \
            == [noisy.rng("client.read").random() for _ in range(20)]

    def test_different_seeds_diverge(self):
        a = FaultInjector(FaultPlan(seed=1))
        b = FaultInjector(FaultPlan(seed=2))
        assert a.rng("x").random() != b.rng("x").random()

    def test_different_sites_diverge(self):
        injector = FaultInjector(FaultPlan(seed=1))
        assert injector.rng("a").random() != injector.rng("b").random()


MIXED = TransportFaults(latency_rate=0.3, latency_ms=(0.0, 2.0),
                        stall_rate=0.05, stall_seconds=0.1,
                        drop_rate=0.1, truncate_rate=0.1, reset_rate=0.1)


class TestReplayDeterminism:
    def test_message_fault_sequence_replays_exactly(self):
        plan = FaultPlan(seed=42, client_transport=MIXED)
        first = FaultInjector(plan)
        second = FaultInjector(plan)
        decisions = [first.message_fault("c.write", MIXED)
                     for _ in range(300)]
        replayed = [second.message_fault("c.write", MIXED)
                    for _ in range(300)]
        assert decisions == replayed
        # The plan is not a no-op: faults of several kinds actually fire.
        kinds = {d["fault"] for d in decisions if d}
        assert {"drop", "truncate", "reset"} <= kinds

    def test_store_fault_sequence_replays_exactly(self):
        faults = StoreFaults(torn_write_rate=0.2, io_error_rate=0.2,
                             stale_read_rate=0.3)
        plan = FaultPlan(seed=9, store=faults)
        first = FaultInjector(plan)
        second = FaultInjector(plan)
        assert [first.store_write_fault("s.put", faults)
                for _ in range(200)] \
            == [second.store_write_fault("s.put", faults)
                for _ in range(200)]
        assert [first.store_read_fault("s.get", faults)
                for _ in range(200)] \
            == [second.store_read_fault("s.get", faults)
                for _ in range(200)]

    def test_crash_point_is_armed_deterministically(self):
        plan = FaultPlan(seed=13,
                         process=ProcessFaults(crash_after_pushes=(50, 90)))
        points = []
        for _ in range(2):
            injector = FaultInjector(plan)
            injector.crash_gate("pre-ingest")  # arms without reaching it
            points.append(injector._crash_point)
        assert points[0] == points[1]
        crash_at, phase = points[0]
        assert 50 <= crash_at <= 90
        assert phase in chaos.CRASH_PHASES

    def test_fault_log_lines_are_flushed_json(self, tmp_path):
        log = tmp_path / "faults.jsonl"
        injector = FaultInjector(FaultPlan(seed=1), log_path=log)
        injector.record("client.transport", "reset", direction="write")
        injector.record("store", "torn-write", stream="s", kept=10)
        # No close(): per-line flushing must make the log readable now,
        # exactly as it must be after an os._exit crash.
        events = [json.loads(line) for line in
                  log.read_text().splitlines()]
        assert [e["fault"] for e in events] == ["reset", "torn-write"]
        assert events == injector.events
        injector.close()
        injector.close()  # idempotent


class TestMessageFault:
    def test_zero_rates_never_fire(self):
        injector = FaultInjector(FaultPlan(seed=3))
        quiet = TransportFaults()
        assert all(injector.message_fault("x", quiet) is None
                   for _ in range(200))

    def test_certain_reset_always_fires(self):
        injector = FaultInjector(FaultPlan(seed=3))
        certain = TransportFaults(reset_rate=1.0)
        assert all(injector.message_fault("x", certain)["fault"] == "reset"
                   for _ in range(50))

    def test_terminal_faults_are_mutually_exclusive(self):
        injector = FaultInjector(FaultPlan(seed=3))
        everything = TransportFaults(stall_rate=0.25, drop_rate=0.25,
                                     truncate_rate=0.25, reset_rate=0.25)
        for _ in range(300):
            decision = injector.message_fault("x", everything)
            assert decision is not None
            assert decision["fault"] in ("stall", "drop", "truncate",
                                         "reset")

    def test_latency_delay_within_bounds(self):
        injector = FaultInjector(FaultPlan(seed=3))
        slow = TransportFaults(latency_rate=1.0, latency_ms=(2.0, 8.0))
        for _ in range(100):
            decision = injector.message_fault("x", slow)
            assert decision["fault"] == "latency"
            assert 0.002 <= decision["delay"] <= 0.008

    def test_truncate_keeps_a_strict_fraction(self):
        injector = FaultInjector(FaultPlan(seed=3))
        torn = TransportFaults(truncate_rate=1.0)
        for _ in range(100):
            decision = injector.message_fault("x", torn)
            assert 0.0 < decision["keep_fraction"] < 1.0

    def test_connect_fault_rate_zero_and_one(self):
        injector = FaultInjector(FaultPlan(seed=3))
        assert not injector.connect_fault("x", TransportFaults())
        assert injector.connect_fault(
            "x", TransportFaults(connect_fail_rate=1.0))


class TestRetryPolicy:
    def test_backoff_is_capped_exponential_with_full_jitter(self):
        policy = RetryPolicy(base_delay=0.1, multiplier=2.0, max_delay=1.0)
        rng = random.Random(5)
        for attempt in range(12):
            cap = min(1.0, 0.1 * 2.0 ** attempt)
            for _ in range(20):
                delay = policy.backoff_delay(attempt, rng=rng)
                assert 0.0 <= delay <= cap

    def test_values_are_clamped_not_rejected(self):
        policy = RetryPolicy(attempts=0, base_delay=-1, multiplier=0.5,
                             max_delay=-2)
        assert policy.attempts == 1
        assert policy.base_delay == 0.0
        assert policy.multiplier == 1.0
        assert policy.max_delay == 0.0

    @pytest.mark.parametrize("field", ["deadline", "op_timeout"])
    def test_nonpositive_budgets_rejected(self, field):
        with pytest.raises(ParameterError, match=field):
            RetryPolicy(**{field: 0})

    def test_with_attempts_copies_shape(self):
        policy = RetryPolicy(base_delay=0.2, deadline=7.0)
        bumped = policy.with_attempts(3)
        assert bumped.attempts == 3
        assert bumped.base_delay == 0.2
        assert bumped.deadline == 7.0

    def test_legacy_mapping_preserves_patience(self):
        policy = RetryPolicy.legacy(10, 0.5)
        assert policy.attempts == 10
        assert policy.max_delay == 0.5
        assert policy.deadline >= 10 * 0.5

    @pytest.mark.parametrize("error", [
        ConnectionResetError("peer died"),
        BrokenPipeError("mid-feed"),
        ConnectionRefusedError("restarting"),
        OSError("network unreachable"),
        EOFError(),
        TimeoutError(),
        asyncio.IncompleteReadError(b"", 10),
    ])
    def test_transport_weather_is_retryable(self, error):
        assert is_retryable(error)

    @pytest.mark.parametrize("error", [
        RemoteError("bad-key", "wrong key"),
        ProtocolError("unknown frame"),
        ParameterError("phi must be positive"),
        ValueError("not ours"),
    ])
    def test_semantic_failures_fail_fast(self, error):
        assert not is_retryable(error)


class TestChaosCheckpointStore:
    def _store(self, seed, inner, **faults):
        plan = FaultPlan(seed=seed, store=StoreFaults(**faults))
        return ChaosCheckpointStore(inner, FaultInjector(plan))

    def test_clean_plan_is_transparent(self):
        store = self._store(1, MemoryCheckpointStore())
        assert store.save("s", STATE) == 1
        assert store.save("s", dict(STATE, n=2)) == 2
        assert store.load("s")["n"] == 2
        assert store.ids() == ("s",)

    def test_io_error_leaves_disk_untouched(self, tmp_path):
        inner = DirectoryCheckpointStore(tmp_path)
        inner.save("s", dict(STATE, n=1))
        store = self._store(1, inner, io_error_rate=1.0)
        with pytest.raises(CheckpointStoreError, match="I/O error"):
            store.save("s", dict(STATE, n=2))
        assert inner.load("s")["n"] == 1

    def test_torn_write_persists_a_prefix(self):
        inner = MemoryCheckpointStore()
        store = self._store(2, inner, torn_write_rate=1.0)
        with pytest.raises(CheckpointStoreError, match="torn write"):
            store.save("s", STATE)
        # The prefix landed "durably": the inner entry is now garbage.
        assert inner._get("s") is not None
        with pytest.raises(CheckpointStoreError, match="not valid JSON"):
            inner.load("s")

    def test_torn_write_falls_back_a_generation_on_directory(self,
                                                             tmp_path):
        """The injected torn write exercises the real recovery path:
        quarantine + generation fallback + a loud rewind."""
        inner = DirectoryCheckpointStore(tmp_path)
        inner.save("s", dict(STATE, n=1))
        inner.save("s", dict(STATE, n=2))
        store = self._store(2, inner, torn_write_rate=1.0)
        with pytest.raises(CheckpointStoreError, match="torn write"):
            store.save("s", dict(STATE, n=3))
        # Reading through the chaos wrapper recovers generation 1 (the
        # last complete save) and quarantines the torn latest.
        entry = store.entry("s")
        assert entry["state"]["n"] == 2
        assert entry["sequence"] == 2
        assert inner.fallbacks == 1
        assert inner.quarantined == 1
        assert list((tmp_path / "corrupt").iterdir())

    def test_stale_read_serves_previous_entry(self):
        inner = MemoryCheckpointStore()
        store = self._store(3, inner, stale_read_rate=1.0)
        store.save("s", dict(STATE, n=1))
        store.save("s", dict(STATE, n=2))
        assert store.entry("s")["state"]["n"] == 1  # stale shadow
        assert inner.entry("s")["state"]["n"] == 2  # truth underneath
        # Sequence numbering sees the inner truth, not the stale view.
        assert store.save("s", dict(STATE, n=3)) == 3

    def test_stale_read_without_history_serves_latest(self):
        store = self._store(3, MemoryCheckpointStore(),
                            stale_read_rate=1.0)
        store.save("s", dict(STATE, n=1))
        assert store.entry("s")["state"]["n"] == 1

    def test_delete_clears_shadow(self):
        store = self._store(4, MemoryCheckpointStore(),
                            stale_read_rate=1.0)
        store.save("s", dict(STATE, n=1))
        store.save("s", dict(STATE, n=2))
        store.delete("s")
        assert "s" not in store
        store.save("s", dict(STATE, n=9))
        assert store.entry("s")["state"]["n"] == 9


class _FakeChannel:
    """A loopback TransportConnection stub recording written bodies."""

    peer = "fake:0"

    def __init__(self):
        self.written = []
        self.inbox = []
        self.aborted = False
        self.closed = False

    async def read_message(self):
        return self.inbox.pop(0) if self.inbox else None

    async def write_message(self, body):
        self.written.append(body)

    async def write_messages(self, bodies):
        for body in bodies:
            await self.write_message(body)

    async def close(self):
        self.closed = True

    def abort(self):
        self.aborted = True


def _chaos_channel(seed, **faults):
    plan_faults = TransportFaults(**faults)
    injector = FaultInjector(FaultPlan(seed=seed,
                                       client_transport=plan_faults))
    inner = _FakeChannel()
    return ChaosChannel(inner, injector, plan_faults, "client.t"), inner


class TestChaosChannel:
    def test_clean_faults_pass_messages_through(self):
        channel, inner = _chaos_channel(1)
        inner.inbox.append(b"pong")
        asyncio.run(channel.write_message(b"ping"))
        assert inner.written == [b"ping"]
        assert asyncio.run(channel.read_message()) == b"pong"

    def test_write_reset_aborts_and_raises(self):
        channel, inner = _chaos_channel(1, reset_rate=1.0)
        with pytest.raises(ConnectionResetError, match="injected reset"):
            asyncio.run(channel.write_message(b"ping"))
        assert inner.aborted
        assert inner.written == []

    def test_read_reset_aborts_and_raises(self):
        channel, inner = _chaos_channel(1, reset_rate=1.0)
        inner.inbox.append(b"pong")
        with pytest.raises(ConnectionResetError):
            asyncio.run(channel.read_message())
        assert inner.aborted

    def test_write_drop_swallows_the_message(self):
        channel, inner = _chaos_channel(1, drop_rate=1.0)
        asyncio.run(channel.write_message(b"ping"))
        assert inner.written == []
        assert not inner.aborted

    def test_read_drop_is_modelled_as_a_prompt_reset(self):
        """Silence forever would be unrecoverable in bounded time, so a
        read-side drop surfaces as a reset instead."""
        channel, inner = _chaos_channel(1, drop_rate=1.0)
        inner.inbox.append(b"pong")
        with pytest.raises(ConnectionResetError):
            asyncio.run(channel.read_message())
        assert inner.aborted

    def test_truncate_sends_a_strict_prefix_then_resets(self):
        channel, inner = _chaos_channel(1, truncate_rate=1.0)
        body = bytes(range(200))
        with pytest.raises(ConnectionResetError, match="truncation"):
            asyncio.run(channel.write_message(body))
        assert inner.aborted
        (sent,) = inner.written
        assert 1 <= len(sent) < len(body)
        assert body.startswith(sent)

    def test_write_messages_draws_per_message(self):
        """A batch drop loses only the dropped messages, like a real
        flaky link, and the fault log names each one."""
        channel, inner = _chaos_channel(7, drop_rate=0.3)
        bodies = [b"m%d" % i for i in range(40)]
        asyncio.run(channel.write_messages(bodies))
        dropped = 40 - len(inner.written)
        assert dropped > 0
        assert [e["fault"] for e in channel._injector.events].count(
            "drop") == dropped
        # Per-message decisions: the survivors pass through in order.
        assert inner.written == [b for b in bodies if b in inner.written]


class TestInstall:
    def test_unresolved_chaos_transport_is_clean_error(self):
        from repro.server.transports import build_transport

        chaos.uninstall()
        with pytest.raises(ReproError, match="install"):
            build_transport("chaos")

    def test_install_resolves_and_uninstall_clears(self):
        from repro.server.transports import build_transport

        injector = chaos.install(FaultPlan(seed=5), inner="tcp",
                                 side="client")
        try:
            assert chaos.installed() is injector
            transport = build_transport("chaos")
            assert transport._injector is injector
        finally:
            chaos.uninstall()
        assert chaos.installed() is None

    def test_chaos_transport_round_trip_over_real_tcp(self):
        """A chaos-wrapped dial against a chaos-wrapped listener moves
        real bytes over 127.0.0.1 (quiet plan: no faults fire)."""
        from repro.chaos import ChaosTransport
        from repro.server.transports import build_transport

        injector = FaultInjector(FaultPlan(seed=5))

        async def scenario():
            server = ChaosTransport(inner=build_transport("tcp"),
                                    injector=injector, side="server")
            seen = []

            async def handler(connection):
                message = await connection.read_message()
                seen.append(message)
                await connection.write_message(b"echo:" + message)

            listener = await server.serve("127.0.0.1", 0, handler)
            host, port = listener.address
            client = ChaosTransport(inner=build_transport("tcp"),
                                    injector=injector, side="client")
            channel = await client.connect(host, port)
            await channel.write_message(b"hello")
            reply = await channel.read_message()
            await channel.close()
            listener.close()
            await listener.wait_closed()
            return seen, reply

        seen, reply = asyncio.run(scenario())
        assert seen == [b"hello"]
        assert reply == b"echo:hello"

    def test_injected_dial_failure_over_real_tcp(self):
        from repro.chaos import ChaosTransport
        from repro.server.transports import build_transport

        plan = FaultPlan(seed=5, client_transport=TransportFaults(
            connect_fail_rate=1.0))
        client = ChaosTransport(inner=build_transport("tcp"),
                                injector=FaultInjector(plan),
                                side="client")
        with pytest.raises(ConnectionRefusedError, match="chaos"):
            asyncio.run(client.connect("127.0.0.1", 9))


class TestCrashGate:
    def test_inactive_plan_never_crashes(self):
        injector = FaultInjector(FaultPlan(seed=1))
        for _ in range(100):
            for phase in chaos.CRASH_PHASES:
                injector.crash_gate(phase)  # returning is the assertion

    def test_crash_fires_with_exit_code_and_flushed_log(self, tmp_path):
        """The armed crash really kills the process (in a child) with
        the plan's exit code, and the flushed log survives it."""
        log = tmp_path / "faults.jsonl"
        script = f"""
import repro.chaos as chaos
plan = chaos.FaultPlan(seed=8, process=chaos.ProcessFaults(
    crash_after_pushes=(3, 3), exit_code=77))
injector = chaos.FaultInjector(plan, log_path={str(log)!r})
for push in range(100):
    for phase in chaos.CRASH_PHASES:
        injector.crash_gate(phase)
raise SystemExit("crash gate never fired")
"""
        result = subprocess.run([sys.executable, "-c", script],
                                capture_output=True, text=True,
                                timeout=60)
        assert result.returncode == 77
        (event,) = [json.loads(line) for line in
                    log.read_text().splitlines()]
        assert event["fault"] == "crash"
        assert event["push"] == 3
        assert event["exit_code"] == 77
        assert event["phase"] in chaos.CRASH_PHASES
