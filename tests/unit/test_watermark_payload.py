"""Tests for watermark payload coercion."""

from __future__ import annotations

import pytest
from hypothesis import assume, given
from hypothesis import strategies as st

from repro.core.watermark import bits_to_bytes, bits_to_text, to_bits
from repro.errors import ParameterError


class TestToBits:
    def test_bit_string(self):
        assert to_bits("101") == [True, False, True]

    def test_text_string_utf8(self):
        bits = to_bits("A")  # 0x41 = 0100 0001
        assert bits == [False, True, False, False, False, False, False, True]

    def test_bytes(self):
        assert to_bits(b"\x80") == [True] + [False] * 7

    def test_bit_list(self):
        assert to_bits([1, 0, True, False]) == [True, False, True, False]

    def test_empty_rejected(self):
        for bad in ("", b"", []):
            with pytest.raises(ParameterError):
                to_bits(bad)

    def test_non_bit_items_rejected(self):
        with pytest.raises(ParameterError):
            to_bits([1, 2, 0])

    def test_unsupported_type_rejected(self):
        with pytest.raises(ParameterError):
            to_bits(3.14)

    @given(st.binary(min_size=1, max_size=16))
    def test_bytes_roundtrip(self, raw):
        assert bits_to_bytes(to_bits(raw)) == raw

    @given(st.text(alphabet=st.characters(codec="ascii",
                                          min_codepoint=32,
                                          max_codepoint=126),
                   min_size=1, max_size=12))
    def test_text_roundtrip(self, text):
        # Strings made solely of '0'/'1' are bit literals by the
        # documented coercion rule, not text.
        assume(set(text) - {"0", "1"})
        assert bits_to_text(to_bits(text)) == text


class TestBitsToBytes:
    def test_undefined_replaced(self):
        bits = [True, None, False, None, True, True, False, False]
        assert bits_to_bytes(bits, undefined_as=False) == bytes([0b10001100])
        assert bits_to_bytes(bits, undefined_as=True) == bytes([0b11011100])

    def test_non_multiple_of_eight_rejected(self):
        with pytest.raises(ParameterError):
            bits_to_bytes([True] * 7)
