"""Unit tests for process-pool batch detection and the bucket merge law.

The merge law under test: voting buckets, abstentions and scan counters
are plain sums over disjoint evidence, so merging partial results is
exact — serial equals parallel for *every* workers/spans split.  The
pool itself is exercised sparingly (forks are slow on CI); most splits
run the serial path of :func:`run_tasks`, which is the same code the
pool workers execute.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import detector as detector_module
from repro.core.detector import DetectionResult, detect_best, detect_watermark
from repro.core.embedder import watermark_stream
from repro.core.parallel_detect import (
    DetectionTask,
    detect_many,
    detect_watermark_spans,
    merge_results,
    run_task,
    run_tasks,
    split_spans,
)
from repro.core.params import WatermarkParams
from repro.core.scanner import ScanCounters
from repro.errors import ParameterError
from repro.hub import StreamHub
from repro.streams.generators import TemperatureSensorGenerator

KEY = b"parallel-test-key"

#: Small window so a 6000-item stream splits into several legal spans
#: (split_spans refuses spans under 8 windows).
PARAMS = WatermarkParams(window_size=64)


@pytest.fixture(scope="module")
def marked() -> np.ndarray:
    data = TemperatureSensorGenerator(eta=60, seed=31).generate(6000)
    values, _ = watermark_stream(np.array(data), "1", KEY, params=PARAMS)
    return values


# ----------------------------------------------------------------------
# split_spans
# ----------------------------------------------------------------------

class TestSplitSpans:

    def test_contiguous_cover(self):
        for n_items, n_spans in [(10, 1), (10, 3), (100, 7), (5, 5)]:
            spans = split_spans(n_items, n_spans)
            assert spans[0][0] == 0
            assert spans[-1][1] == n_items
            for (_, end), (start, _) in zip(spans, spans[1:]):
                assert end == start

    def test_deterministic_and_balanced(self):
        assert split_spans(10, 3) == [(0, 4), (4, 7), (7, 10)]
        assert split_spans(10, 3) == split_spans(10, 3)

    def test_min_span_reduces_count_not_length(self):
        spans = split_spans(1000, 8, min_span=300)
        assert len(spans) == 3
        assert all(end - start >= 300 for start, end in spans)

    def test_degenerates_to_one_span(self):
        assert split_spans(100, 4, min_span=1000) == [(0, 100)]

    def test_validation(self):
        with pytest.raises(ParameterError):
            split_spans(0, 1)
        with pytest.raises(ParameterError):
            split_spans(10, 0)
        with pytest.raises(ParameterError):
            split_spans(10, 2, min_span=0)


# ----------------------------------------------------------------------
# merge law
# ----------------------------------------------------------------------

class TestMergeLaw:

    def _tasks(self, marked, n_spans):
        ranges = split_spans(len(marked), n_spans,
                             min_span=8 * PARAMS.window_size)
        return [DetectionTask(values=marked[start:end], wm_length=1,
                              key=KEY, params=PARAMS)
                for start, end in ranges]

    def test_serial_equals_parallel_for_every_split(self, marked):
        """The tentpole property: any split merges to the same result."""
        whole = [run_task(self._tasks(marked, 1)[0])]
        reference = merge_results(whole)
        for n_spans in (2, 3, 5, 8):
            tasks = self._tasks(marked, n_spans)
            parts = run_tasks(tasks, workers=None)
            merged = merge_results(parts)
            # Bucket sums across the split equal the part-wise sums.
            assert merged.buckets_true == [
                sum(p.buckets_true[0] for p in parts)]
            assert merged.buckets_false == [
                sum(p.buckets_false[0] for p in parts)]
            assert merged.abstentions == sum(p.abstentions for p in parts)
            assert merged.counters.items == reference.counters.items
            assert merged.vote_threshold == reference.vote_threshold

    def test_pool_matches_serial(self, marked):
        tasks = self._tasks(marked, 3)
        serial = run_tasks(tasks, workers=None)
        pooled = run_tasks(tasks, workers=2)
        assert len(serial) == len(pooled)
        for a, b in zip(serial, pooled):
            assert a == b
        assert merge_results(serial) == merge_results(pooled)

    def test_counter_sum_covers_every_field(self, marked):
        parts = run_tasks(self._tasks(marked, 3), workers=None)
        merged = merge_results(parts)
        import dataclasses
        for field in dataclasses.fields(ScanCounters):
            assert getattr(merged.counters, field.name) == sum(
                getattr(p.counters, field.name) for p in parts)

    def test_merge_validation(self):
        counters = ScanCounters()
        one_bit = DetectionResult(buckets_true=[1], buckets_false=[0],
                                  counters=counters, abstentions=0,
                                  vote_threshold=0)
        two_bit = DetectionResult(buckets_true=[1, 0],
                                  buckets_false=[0, 1],
                                  counters=counters, abstentions=0,
                                  vote_threshold=0)
        other_threshold = DetectionResult(buckets_true=[1],
                                          buckets_false=[0],
                                          counters=counters, abstentions=0,
                                          vote_threshold=2)
        with pytest.raises(ParameterError):
            merge_results([])
        with pytest.raises(ParameterError):
            merge_results([one_bit, two_bit])
        with pytest.raises(ParameterError):
            merge_results([one_bit, other_threshold])

    def test_empty_task_rejected(self):
        with pytest.raises(ParameterError):
            DetectionTask(values=np.array([]), wm_length=1, key=KEY)

    def test_negative_workers_rejected(self, marked):
        with pytest.raises(ParameterError):
            run_tasks(self._tasks(marked, 1), workers=-1)


# ----------------------------------------------------------------------
# the detect_watermark / detect_best surfaces
# ----------------------------------------------------------------------

class TestDetectorSurface:

    def test_spans_mode_equals_manual_merge(self, marked):
        via_api = detect_watermark(marked, 1, KEY, params=PARAMS, spans=3)
        ranges = split_spans(len(marked), 3,
                             min_span=8 * PARAMS.window_size)
        manual = merge_results(
            [detect_watermark(marked[a:b], 1, KEY, params=PARAMS)
             for a, b in ranges])
        assert via_api == manual

    def test_detect_best_workers_matches_serial(self, marked):
        degrees = [1.0, 3.0]
        serial_best, serial_degree = detect_best(
            marked, 1, KEY, params=PARAMS, candidate_degrees=degrees)
        pooled_best, pooled_degree = detect_best(
            marked, 1, KEY, params=PARAMS, candidate_degrees=degrees,
            workers=2)
        assert pooled_degree == serial_degree
        assert pooled_best == serial_best

    def test_detect_best_dedupes_near_degrees(self, marked,
                                              monkeypatch):
        calls: "list[float]" = []
        original = detector_module.detect_watermark

        def counting(values, wm_length, key, **kwargs):
            calls.append(kwargs["transform_degree"])
            return original(values, wm_length, key, **kwargs)

        monkeypatch.setattr(detector_module, "detect_watermark", counting)
        detect_best(marked[:1500], 1, KEY, params=PARAMS,
                    candidate_degrees=[1.0, 1.2, 0.9, 3.0])
        # 1.2 and 0.9 sit within the 0.25 dedupe tolerance of 1.0:
        # only two passes actually run.
        assert calls == [1.0, 3.0]


# ----------------------------------------------------------------------
# hub batch screening
# ----------------------------------------------------------------------

class TestHubBatch:

    def test_detect_batch_order_and_keys(self, marked):
        wrong_key = b"not-the-embedding-key"
        jobs = [
            (marked, 1, KEY, {"params": PARAMS}),
            (marked, 1, wrong_key, {"params": PARAMS}),
        ]
        results = StreamHub.detect_batch(jobs)
        assert len(results) == 2
        right, wrong = results
        assert right.total_bias > wrong.total_bias
        assert right.total_bias > 0

    def test_detect_batch_accepts_tasks(self, marked):
        task = DetectionTask(values=marked, wm_length=1, key=KEY,
                             params=PARAMS)
        direct = detect_many([task])
        via_hub = StreamHub.detect_batch([task])
        assert direct == via_hub
