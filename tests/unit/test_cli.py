"""Tests for the command-line interface."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.cli import main
from repro.streams.generators import TemperatureSensorGenerator
from repro.streams.io import load_stream_csv, save_stream_csv


@pytest.fixture()
def stream_file(tmp_path):
    values = TemperatureSensorGenerator(eta=80, seed=13).generate(5000)
    path = tmp_path / "stream.csv"
    save_stream_csv(path, values)
    return path


class TestEmbedDetect:
    def test_embed_then_detect(self, stream_file, tmp_path, capsys):
        marked_path = tmp_path / "marked.csv"
        code = main(["embed", str(stream_file), str(marked_path),
                     "--key", "cli-key", "--watermark", "1"])
        assert code == 0
        embed_info = json.loads(capsys.readouterr().out)
        assert embed_info["embedded"] > 0

        code = main(["detect", str(marked_path), "--key", "cli-key",
                     "--expect", "1"])
        assert code == 0
        detect_info = json.loads(capsys.readouterr().out)
        assert detect_info["bias"][0] > 10
        assert detect_info["match_fraction"] == 1.0
        assert detect_info["estimate"] == ["1"]

    def test_detect_spans_flag(self, stream_file, tmp_path, capsys):
        """--spans routes through the span-merge path.

        With the default 2048-item window the 5000-item stream is below
        the 8-window span floor, so the split degrades to one span and
        the output must be *identical* to the plain serial detect.
        """
        marked_path = tmp_path / "marked.csv"
        main(["embed", str(stream_file), str(marked_path),
              "--key", "cli-key", "--watermark", "1"])
        capsys.readouterr()

        code = main(["detect", str(marked_path), "--key", "cli-key"])
        assert code == 0
        serial = json.loads(capsys.readouterr().out)
        code = main(["detect", str(marked_path), "--key", "cli-key",
                     "--spans", "2"])
        assert code == 0
        spanned = json.loads(capsys.readouterr().out)
        assert spanned == serial

    def test_detect_wrong_key_low_bias(self, stream_file, tmp_path, capsys):
        marked_path = tmp_path / "marked.csv"
        main(["embed", str(stream_file), str(marked_path),
              "--key", "cli-key"])
        capsys.readouterr()
        main(["detect", str(marked_path), "--key", "other-key"])
        info = json.loads(capsys.readouterr().out)
        assert abs(info["bias"][0]) <= 12

    def test_missing_key_is_an_error(self, stream_file, tmp_path, capsys,
                                     monkeypatch):
        monkeypatch.delenv("REPRO_KEY", raising=False)
        code = main(["embed", str(stream_file), str(tmp_path / "o.csv")])
        assert code == 2
        assert "key" in capsys.readouterr().err

    def test_params_override(self, stream_file, tmp_path, capsys):
        code = main(["embed", str(stream_file), str(tmp_path / "o.csv"),
                     "--key", "k", "--params", '{"phi": 5}'])
        assert code == 0

    def test_normalization_roundtrip(self, tmp_path, capsys):
        """Physical-unit streams embed and detect via --normalize."""
        celsius = 15 + 8 * TemperatureSensorGenerator(
            eta=80, seed=14).generate(5000)
        raw = tmp_path / "celsius.csv"
        save_stream_csv(raw, celsius)
        marked = tmp_path / "marked.csv"
        main(["embed", str(raw), str(marked), "--key", "k",
              "--normalize", "7:23"])
        capsys.readouterr()
        published = load_stream_csv(marked)
        assert np.max(np.abs(published - celsius)) < 0.01
        code = main(["detect", str(marked), "--key", "k",
                     "--normalize", "7:23"])
        assert code == 0
        info = json.loads(capsys.readouterr().out)
        assert info["bias"][0] > 10


class TestAttackAndInfo:
    def test_attack_sample(self, stream_file, tmp_path, capsys):
        out = tmp_path / "sampled.csv"
        code = main(["attack", str(stream_file), str(out),
                     "--kind", "sample", "--degree", "4", "--seed", "3"])
        assert code == 0
        info = json.loads(capsys.readouterr().out)
        assert info["output_items"] == pytest.approx(
            info["input_items"] / 4, abs=1)

    def test_attack_epsilon(self, stream_file, tmp_path, capsys):
        out = tmp_path / "attacked.csv"
        code = main(["attack", str(stream_file), str(out),
                     "--kind", "epsilon", "--tau", "0.2",
                     "--epsilon", "0.1", "--seed", "3"])
        assert code == 0
        attacked = load_stream_csv(out)
        original = load_stream_csv(stream_file)
        changed = np.sum(attacked != original)
        assert 0 < changed <= 0.2 * len(original)

    def test_info(self, stream_file, capsys):
        code = main(["info", str(stream_file)])
        assert code == 0
        info = json.loads(capsys.readouterr().out)
        assert info["items"] == 5000
        assert info["major_extremes"] > 10
        assert info["eta_estimate"] > 0


class TestErrorPaths:
    def test_unknown_attack_kind_suggests_spelling(self, stream_file,
                                                   tmp_path, capsys):
        """A typoed --kind fails cleanly with a did-you-mean hint."""
        code = main(["attack", str(stream_file), str(tmp_path / "o.csv"),
                     "--kind", "sampel"])
        assert code == 2
        err = capsys.readouterr().err
        assert "unknown" in err
        assert "Did you mean 'sample'?" in err

    def test_unknown_attack_kind_lists_valid_names(self, stream_file,
                                                   tmp_path, capsys):
        code = main(["attack", str(stream_file), str(tmp_path / "o.csv"),
                     "--kind", "zzz-no-such-attack"])
        assert code == 2
        err = capsys.readouterr().err
        assert "epsilon" in err and "summarize" in err

    def test_unknown_encoding_rejected_by_parser(self, stream_file,
                                                 tmp_path, capsys):
        """Encoding choices come from the registry; bogus names die in
        argparse with exit code 2."""
        with pytest.raises(SystemExit) as excinfo:
            main(["embed", str(stream_file), str(tmp_path / "o.csv"),
                  "--key", "k", "--encoding", "no-such-encoding"])
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert "invalid choice" in err
        assert "multihash" in err

    def test_detect_unknown_encoding_rejected(self, stream_file, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["detect", str(stream_file), "--key", "k",
                  "--encoding", "bogus"])
        assert excinfo.value.code == 2


class TestHubCommands:
    @pytest.fixture()
    def fleet(self, tmp_path):
        """Two small CSV streams plus derived paths for hub runs."""
        specs = {}
        for i, seed in enumerate((21, 22)):
            values = TemperatureSensorGenerator(
                eta=80, seed=seed).generate(2500)
            path = tmp_path / f"s{i}.csv"
            save_stream_csv(path, values)
            specs[f"stream-{i}"] = (values, path)
        return tmp_path, specs

    def _stream_args(self, specs, tmp_path, suffix):
        return [arg for sid, (_, path) in specs.items()
                for arg in ("--stream",
                            f"{sid}={path}={tmp_path / (sid + suffix)}")]

    def test_embed_crash_resume_matches_offline(self, fleet, capsys):
        """hub embed --stop-after + hub resume == offline watermarking."""
        from repro import watermark_stream

        tmp_path, specs = fleet
        store = tmp_path / "store"
        code = main(["hub", "embed", str(store), "--key", "hub-key",
                     "--watermark", "1", "--chunk", "400",
                     "--stop-after", "7"]
                    + self._stream_args(specs, tmp_path, ".out.csv"))
        assert code == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["stopped_early"] is True

        code = main(["hub", "status", str(store)])
        assert code == 0
        status = json.loads(capsys.readouterr().out)
        assert {row["stream_id"] for row in status["streams"]} \
            == set(specs)
        assert all(row["kind"] == "protection-session"
                   and row["sequence"] > 0 and not row["finished"]
                   for row in status["streams"])

        code = main(["hub", "resume", str(store), "--key", "hub-key",
                     "--chunk", "400"]
                    + self._stream_args(specs, tmp_path, ".tail.csv"))
        assert code == 0
        summary = json.loads(capsys.readouterr().out)
        assert all(row["finished"] for row in summary["streams"].values())

        for sid, (values, _) in specs.items():
            offline, _ = watermark_stream(values, "1", b"hub-key")
            recovered = np.concatenate([
                load_stream_csv(tmp_path / f"{sid}.out.csv"),
                load_stream_csv(tmp_path / f"{sid}.tail.csv")])
            assert np.array_equal(recovered, offline)

    def test_stop_after_with_sparse_cadence_never_duplicates(self, fleet,
                                                             capsys):
        """--checkpoint-every > 1 + --stop-after must still hand resume
        a store consistent with the written outputs (a controlled stop
        checkpoints everything), so concat(out, tail) stays exact."""
        from repro import watermark_stream

        tmp_path, specs = fleet
        store = tmp_path / "store"
        code = main(["hub", "embed", str(store), "--key", "hub-key",
                     "--chunk", "400", "--checkpoint-every", "3",
                     "--stop-after", "4"]
                    + self._stream_args(specs, tmp_path, ".out.csv"))
        assert code == 0
        capsys.readouterr()
        code = main(["hub", "resume", str(store), "--key", "hub-key",
                     "--chunk", "400"]
                    + self._stream_args(specs, tmp_path, ".tail.csv"))
        assert code == 0
        capsys.readouterr()
        for sid, (values, _) in specs.items():
            offline, _ = watermark_stream(values, "1", b"hub-key")
            recovered = np.concatenate([
                load_stream_csv(tmp_path / f"{sid}.out.csv"),
                load_stream_csv(tmp_path / f"{sid}.tail.csv")])
            assert len(recovered) == len(offline)
            assert np.array_equal(recovered, offline)

    def test_streams_without_output_yet_are_reported_not_crashed(
            self, fleet, capsys):
        """Stopping before a stream released anything must not die on
        an empty CSV; the summary reports written_items 0."""
        tmp_path, specs = fleet
        store = tmp_path / "store"
        code = main(["hub", "embed", str(store), "--key", "k",
                     "--chunk", "400", "--stop-after", "1"]
                    + self._stream_args(specs, tmp_path, ".out.csv"))
        assert code == 0
        summary = json.loads(capsys.readouterr().out)
        rows = summary["streams"]
        untouched = [sid for sid, row in rows.items()
                     if row["written_items"] == 0]
        assert untouched  # with one push only, some stream has nothing
        for sid in untouched:
            assert rows[sid]["output"] is None
            assert not (tmp_path / f"{sid}.out.csv").exists()

    def test_resume_of_completed_run_is_graceful(self, fleet, capsys):
        """Resuming a store whose run already finished writes nothing
        and reports finished streams instead of crashing."""
        tmp_path, specs = fleet
        store = tmp_path / "store"
        main(["hub", "embed", str(store), "--key", "k"]
             + self._stream_args(specs, tmp_path, ".out.csv"))
        capsys.readouterr()
        code = main(["hub", "resume", str(store), "--key", "k"]
                    + self._stream_args(specs, tmp_path, ".tail.csv"))
        assert code == 0
        summary = json.loads(capsys.readouterr().out)
        for row in summary["streams"].values():
            assert row["finished"] is True
            assert row["written_items"] == 0

    def test_status_missing_store_is_clean_error(self, tmp_path, capsys):
        code = main(["hub", "status", str(tmp_path / "no-such-store")])
        assert code == 2
        assert "does not exist" in capsys.readouterr().err

    def test_resume_missing_store_is_clean_error(self, fleet, capsys):
        tmp_path, specs = fleet
        code = main(["hub", "resume", str(tmp_path / "nowhere"),
                     "--key", "k"]
                    + self._stream_args(specs, tmp_path, ".t.csv"))
        assert code == 2
        assert "does not exist" in capsys.readouterr().err

    def test_resume_unknown_stream_is_clean_error(self, fleet, capsys):
        tmp_path, specs = fleet
        store = tmp_path / "store"
        main(["hub", "embed", str(store), "--key", "k", "--stop-after",
              "2"] + self._stream_args(specs, tmp_path, ".o.csv"))
        capsys.readouterr()
        code = main(["hub", "resume", str(store), "--key", "k",
                     "--stream",
                     f"ghost={tmp_path / 's0.csv'}={tmp_path / 'g.csv'}"])
        assert code == 2
        assert "ghost" in capsys.readouterr().err

    def test_bad_stream_spec_is_clean_error(self, tmp_path, capsys):
        code = main(["hub", "embed", str(tmp_path / "store"),
                     "--key", "k", "--stream", "only-an-id"])
        assert code == 2
        assert "ID=IN.csv=OUT.csv" in capsys.readouterr().err

    def test_missing_key_is_clean_error(self, fleet, capsys, monkeypatch):
        monkeypatch.delenv("REPRO_KEY", raising=False)
        tmp_path, specs = fleet
        code = main(["hub", "embed", str(tmp_path / "store")]
                    + self._stream_args(specs, tmp_path, ".o.csv"))
        assert code == 2
        assert "key" in capsys.readouterr().err


class TestHubStatusEmptyStore:
    def test_empty_store_is_a_clear_message_not_a_bare_table(self, tmp_path,
                                                             capsys):
        """An existing-but-empty store exits 0 with an 'empty' message."""
        store = tmp_path / "empty-store"
        store.mkdir()
        code = main(["hub", "status", str(store)])
        assert code == 0
        out = capsys.readouterr().out
        assert "empty" in out
        assert "no stream checkpoints" in out

    def test_store_drained_by_drops_reports_empty(self, tmp_path, capsys):
        """A store whose every stream was dropped reads as empty too."""
        from repro import StreamHub
        from repro.stores import DirectoryCheckpointStore

        store_dir = tmp_path / "store"
        hub = StreamHub(store=DirectoryCheckpointStore(store_dir),
                        checkpoint_every=1)
        hub.protect("s", "1", b"k")
        hub.finish("s")
        hub.drop("s")
        code = main(["hub", "status", str(store_dir)])
        assert code == 0
        assert "empty" in capsys.readouterr().out


class TestRemoteCommands:
    @pytest.fixture()
    def server(self, tmp_path):
        """An in-process StreamService on a background loop."""
        import asyncio
        import threading

        from repro.server.service import StreamService

        loop = asyncio.new_event_loop()
        thread = threading.Thread(target=loop.run_forever, daemon=True)
        thread.start()
        service = StreamService(store_path=tmp_path / "srv-store",
                                checkpoint_every=1)
        host, port = asyncio.run_coroutine_threadsafe(
            service.start(), loop).result(15)
        yield host, port
        asyncio.run_coroutine_threadsafe(service.drain(), loop).result(15)
        loop.call_soon_threadsafe(loop.stop)
        thread.join(timeout=5)
        loop.close()

    def test_remote_embed_then_detect_round_trip(self, server, stream_file,
                                                 tmp_path, capsys):
        """CLI remote embed/detect against a live server, bit-identical
        to offline embedding."""
        from repro import watermark_stream

        host, port = server
        marked_path = tmp_path / "remote-marked.csv"
        code = main(["remote", "embed", str(stream_file), str(marked_path),
                     "--host", host, "--port", str(port),
                     "--stream-id", "cli-s1", "--key", "cli-key",
                     "--watermark", "1"])
        assert code == 0
        info = json.loads(capsys.readouterr().out)
        assert info["items_in"] == 5000
        assert info["items_out"] == 5000

        offline, _ = watermark_stream(load_stream_csv(stream_file), "1",
                                      b"cli-key")
        assert np.array_equal(load_stream_csv(marked_path), offline)

        code = main(["remote", "detect", str(marked_path),
                     "--host", host, "--port", str(port),
                     "--stream-id", "cli-d1", "--key", "cli-key",
                     "--expect", "1"])
        assert code == 0
        verdict = json.loads(capsys.readouterr().out)
        assert verdict["bias"][0] > 10
        assert verdict["match_fraction"] == 1.0
        assert verdict["estimate"] == ["1"]
        assert verdict["reconnects"] == 0

    def test_remote_unreachable_server_is_clean_error(self, stream_file,
                                                      tmp_path, capsys):
        code = main(["remote", "embed", str(stream_file),
                     str(tmp_path / "o.csv"), "--port", "1",
                     "--stream-id", "s", "--key", "k"])
        assert code == 2
        assert "cannot reach" in capsys.readouterr().err


class TestObservabilityCommands:
    """`repro status`, `repro loadgen` and the --json surfaces."""

    @pytest.fixture()
    def server(self, tmp_path):
        import asyncio
        import threading

        from repro.server.service import StreamService

        loop = asyncio.new_event_loop()
        thread = threading.Thread(target=loop.run_forever, daemon=True)
        thread.start()
        service = StreamService(store_path=tmp_path / "obs-store",
                                checkpoint_every=1)
        host, port = asyncio.run_coroutine_threadsafe(
            service.start(), loop).result(15)
        yield host, port
        asyncio.run_coroutine_threadsafe(service.drain(), loop).result(15)
        loop.call_soon_threadsafe(loop.stop)
        thread.join(timeout=5)
        loop.close()

    def test_status_pretty_and_compact(self, server, capsys):
        host, port = server
        code = main(["status", f"{host}:{port}"])
        assert code == 0
        pretty = capsys.readouterr().out
        snapshot = json.loads(pretty)
        assert snapshot["server"]["draining"] is False
        assert snapshot["metrics"]["enabled"] is True
        assert "\n" in pretty.strip()  # indent=2

        code = main(["status", f"{host}:{port}", "--json",
                     "--wire", "json"])
        assert code == 0
        compact = capsys.readouterr().out
        assert len(compact.strip().splitlines()) == 1
        assert json.loads(compact)["server"]["connections"] >= 0

    @pytest.mark.parametrize("address", ["nonsense", ":7000", "host:",
                                         "host:port"])
    def test_status_bad_address_is_clean_error(self, address, capsys):
        code = main(["status", address])
        assert code == 2
        assert "HOST:PORT" in capsys.readouterr().err

    def test_loadgen_host_without_port_is_clean_error(self, capsys):
        code = main(["loadgen", "--host", "10.0.0.1"])
        assert code == 2
        assert "go together" in capsys.readouterr().err

    def test_loadgen_smoke_writes_artifact(self, tmp_path, capsys):
        out = tmp_path / "loadgen.json"
        code = main(["loadgen", "--workers", "2", "--pushes", "4",
                     "--chunk", "64", "--crash-every", "2",
                     "--out", str(out)])
        assert code == 0
        printed = json.loads(capsys.readouterr().out)
        saved = json.loads(out.read_text())
        assert printed == saved
        assert saved["verify_failures"] == 0
        assert saved["worker_errors"] == []
        assert saved["items"] == 2 * 4 * 64
        assert saved["push_ms"]["p50"] is not None

    def test_hub_status_json_is_one_object_per_line(self, tmp_path,
                                                    capsys):
        from repro import StreamHub
        from repro.stores import DirectoryCheckpointStore

        store_path = tmp_path / "store"
        store = DirectoryCheckpointStore(store_path)
        hub = StreamHub(store=store, checkpoint_every=1)
        for sid in ("a", "b"):
            hub.protect(sid, "1", b"k")
            hub.push(sid, np.linspace(0.0, 5.0, 300))

        code = main(["hub", "status", str(store_path), "--json"])
        assert code == 0
        lines = capsys.readouterr().out.strip().splitlines()
        rows = [json.loads(line) for line in lines]
        assert [row["stream_id"] for row in rows] == ["a", "b"]
        assert all(row["items"] == 300 for row in rows)

    def test_hub_status_json_empty_store_emits_no_lines(self, tmp_path,
                                                        capsys):
        from repro.stores import DirectoryCheckpointStore

        store_path = tmp_path / "store"
        DirectoryCheckpointStore(store_path)  # create empty
        code = main(["hub", "status", str(store_path), "--json"])
        assert code == 0
        assert capsys.readouterr().out == ""


class TestChaosAndSuperviseCommands:
    """`repro supervise`, `--chaos` plumbing and the `--retry-*` flags."""

    def test_supervise_builds_the_serve_command(self, monkeypatch,
                                                capsys):
        """Flag parsing lands in a correctly-shaped Supervisor without
        actually spawning anything."""
        import sys

        import repro.chaos.supervisor as supervisor_module

        seen = {}

        def fake_run(self):
            seen["command"] = self._command
            seen["restart_args"] = self._restart_args
            seen["max_restarts"] = self._max_restarts
            seen["window"] = self._restart_window
            return 0

        monkeypatch.setattr(supervisor_module.Supervisor, "run",
                            fake_run)
        code = main(["supervise", "--max-restarts", "7",
                     "--restart-window", "120", "--backoff-base", "0.1",
                     "--", "--port", "7000", "--store", "some-store"])
        assert code == 0
        assert seen["command"] == [sys.executable, "-m", "repro",
                                   "serve", "--port", "7000",
                                   "--store", "some-store"]
        assert seen["restart_args"] == ["--recover"]
        assert seen["max_restarts"] == 7
        assert seen["window"] == 120.0

    def test_supervise_propagates_the_run_exit_code(self, monkeypatch):
        import repro.chaos.supervisor as supervisor_module

        monkeypatch.setattr(supervisor_module.Supervisor, "run",
                            lambda self: 3)
        assert main(["supervise", "--", "--port", "7000"]) == 3

    def test_loadgen_dead_target_is_one_clean_line(self, capsys):
        """An unreachable external endpoint exits 2 with one error
        line — not a pile of per-worker tracebacks (satellite S3)."""
        import socket

        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()  # nothing listens here now
        code = main(["loadgen", "--host", "127.0.0.1",
                     "--port", str(port), "--workers", "2",
                     "--pushes", "2", "--retry-attempts", "2",
                     "--retry-deadline", "2"])
        assert code == 2
        err = capsys.readouterr().err
        assert len(err.strip().splitlines()) == 1
        assert "not usable" in err
        assert f"127.0.0.1:{port}" in err

    def test_retry_flags_reach_the_worker_clients(self, tmp_path,
                                                  capsys):
        """--retry-* flags produce a working policy end to end."""
        code = main(["loadgen", "--workers", "1", "--pushes", "2",
                     "--chunk", "64", "--crash-every", "0",
                     "--retry-attempts", "5", "--retry-base-delay",
                     "0.01", "--retry-max-delay", "0.1",
                     "--retry-deadline", "10",
                     "--retry-op-timeout", "10"])
        assert code == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["verify_failures"] == 0
        assert summary["worker_errors"] == []

    def test_retry_policy_defaults_fill_unset_flags(self):
        import argparse

        from repro.chaos import RetryPolicy
        from repro.cli import _retry_policy

        bare = argparse.Namespace(retry_attempts=None,
                                  retry_base_delay=None,
                                  retry_max_delay=None,
                                  retry_deadline=None,
                                  retry_op_timeout=None)
        assert _retry_policy(bare) is None

        partial = argparse.Namespace(retry_attempts=7,
                                     retry_base_delay=None,
                                     retry_max_delay=None,
                                     retry_deadline=None,
                                     retry_op_timeout=None)
        policy = _retry_policy(partial)
        assert policy.attempts == 7
        assert policy.base_delay == RetryPolicy().base_delay
        assert policy.deadline == RetryPolicy().deadline

    def test_serve_missing_chaos_plan_is_clean_error(self, tmp_path,
                                                     capsys):
        code = main(["serve", "--port", "0",
                     "--chaos", str(tmp_path / "no-plan.json")])
        assert code == 2
        assert "not found" in capsys.readouterr().err

    def test_loadgen_chaos_plan_drives_client_faults(self, tmp_path,
                                                     capsys):
        """--chaos wraps the dialing transport: the run completes with
        zero verify failures even though injected faults fired."""
        import repro.chaos as chaos

        plan = chaos.FaultPlan(
            seed=7,
            client_transport=chaos.TransportFaults(reset_rate=0.05))
        plan_path = tmp_path / "plan.json"
        plan.dump(plan_path)
        try:
            code = main(["loadgen", "--workers", "2", "--pushes", "4",
                         "--chunk", "64", "--crash-every", "0",
                         "--chaos", str(plan_path),
                         "--retry-attempts", "50",
                         "--retry-base-delay", "0.01",
                         "--retry-max-delay", "0.1",
                         "--retry-deadline", "60"])
        finally:
            chaos.uninstall()
        assert code == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["transport"] == "chaos"
        assert summary["verify_failures"] == 0
        assert summary["worker_errors"] == []
