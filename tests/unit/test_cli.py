"""Tests for the command-line interface."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.cli import main
from repro.streams.generators import TemperatureSensorGenerator
from repro.streams.io import load_stream_csv, save_stream_csv


@pytest.fixture()
def stream_file(tmp_path):
    values = TemperatureSensorGenerator(eta=80, seed=13).generate(5000)
    path = tmp_path / "stream.csv"
    save_stream_csv(path, values)
    return path


class TestEmbedDetect:
    def test_embed_then_detect(self, stream_file, tmp_path, capsys):
        marked_path = tmp_path / "marked.csv"
        code = main(["embed", str(stream_file), str(marked_path),
                     "--key", "cli-key", "--watermark", "1"])
        assert code == 0
        embed_info = json.loads(capsys.readouterr().out)
        assert embed_info["embedded"] > 0

        code = main(["detect", str(marked_path), "--key", "cli-key",
                     "--expect", "1"])
        assert code == 0
        detect_info = json.loads(capsys.readouterr().out)
        assert detect_info["bias"][0] > 10
        assert detect_info["match_fraction"] == 1.0
        assert detect_info["estimate"] == ["1"]

    def test_detect_wrong_key_low_bias(self, stream_file, tmp_path, capsys):
        marked_path = tmp_path / "marked.csv"
        main(["embed", str(stream_file), str(marked_path),
              "--key", "cli-key"])
        capsys.readouterr()
        main(["detect", str(marked_path), "--key", "other-key"])
        info = json.loads(capsys.readouterr().out)
        assert abs(info["bias"][0]) <= 12

    def test_missing_key_is_an_error(self, stream_file, tmp_path, capsys,
                                     monkeypatch):
        monkeypatch.delenv("REPRO_KEY", raising=False)
        code = main(["embed", str(stream_file), str(tmp_path / "o.csv")])
        assert code == 2
        assert "key" in capsys.readouterr().err

    def test_params_override(self, stream_file, tmp_path, capsys):
        code = main(["embed", str(stream_file), str(tmp_path / "o.csv"),
                     "--key", "k", "--params", '{"phi": 5}'])
        assert code == 0

    def test_normalization_roundtrip(self, tmp_path, capsys):
        """Physical-unit streams embed and detect via --normalize."""
        celsius = 15 + 8 * TemperatureSensorGenerator(
            eta=80, seed=14).generate(5000)
        raw = tmp_path / "celsius.csv"
        save_stream_csv(raw, celsius)
        marked = tmp_path / "marked.csv"
        main(["embed", str(raw), str(marked), "--key", "k",
              "--normalize", "7:23"])
        capsys.readouterr()
        published = load_stream_csv(marked)
        assert np.max(np.abs(published - celsius)) < 0.01
        code = main(["detect", str(marked), "--key", "k",
                     "--normalize", "7:23"])
        assert code == 0
        info = json.loads(capsys.readouterr().out)
        assert info["bias"][0] > 10


class TestAttackAndInfo:
    def test_attack_sample(self, stream_file, tmp_path, capsys):
        out = tmp_path / "sampled.csv"
        code = main(["attack", str(stream_file), str(out),
                     "--kind", "sample", "--degree", "4", "--seed", "3"])
        assert code == 0
        info = json.loads(capsys.readouterr().out)
        assert info["output_items"] == pytest.approx(
            info["input_items"] / 4, abs=1)

    def test_attack_epsilon(self, stream_file, tmp_path, capsys):
        out = tmp_path / "attacked.csv"
        code = main(["attack", str(stream_file), str(out),
                     "--kind", "epsilon", "--tau", "0.2",
                     "--epsilon", "0.1", "--seed", "3"])
        assert code == 0
        attacked = load_stream_csv(out)
        original = load_stream_csv(stream_file)
        changed = np.sum(attacked != original)
        assert 0 < changed <= 0.2 * len(original)

    def test_info(self, stream_file, capsys):
        code = main(["info", str(stream_file)])
        assert code == 0
        info = json.loads(capsys.readouterr().out)
        assert info["items"] == 5000
        assert info["major_extremes"] > 10
        assert info["eta_estimate"] > 0
