"""Tests for stream model, I/O and the synthetic IRTF dataset."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ParameterError, StreamError
from repro.streams.io import (
    load_stream_csv,
    load_stream_npy,
    save_stream_csv,
    save_stream_npy,
)
from repro.streams.model import StreamMeta, chunked, stream_from_array
from repro.streams.nasa import (
    IRTF_CADENCE_SECONDS,
    IRTF_N_READINGS,
    synthetic_irtf_month,
)


class TestStreamMeta:
    def test_rate_validation(self):
        with pytest.raises(StreamError):
            StreamMeta(rate_hz=0.0)

    def test_resampled_divides_rate(self):
        meta = StreamMeta(rate_hz=100.0)
        assert meta.resampled(4).rate_hz == 25.0

    def test_resampled_validation(self):
        with pytest.raises(StreamError):
            StreamMeta().resampled(0)

    def test_seconds_for(self):
        assert StreamMeta(rate_hz=100.0).seconds_for(500) == 5.0


class TestChunked:
    def test_chunks_cover_source(self):
        chunks = list(chunked(iter(range(10)), 3))
        assert [len(c) for c in chunks] == [3, 3, 3, 1]
        assert np.concatenate(chunks).tolist() == list(map(float, range(10)))

    def test_exact_multiple(self):
        chunks = list(chunked(iter(range(6)), 3))
        assert [len(c) for c in chunks] == [3, 3]

    def test_chunk_size_validation(self):
        with pytest.raises(StreamError):
            list(chunked(iter([1.0]), 0))


class TestStreamFromArray:
    def test_validates_and_attaches_meta(self):
        values, meta = stream_from_array([0.1, 0.2])
        assert values.dtype == np.float64
        assert meta.rate_hz == 100.0

    def test_rejects_non_finite(self):
        with pytest.raises(StreamError):
            stream_from_array([0.1, float("nan")])

    def test_rejects_2d(self):
        with pytest.raises(StreamError):
            stream_from_array(np.zeros((2, 2)))


class TestIo:
    def test_csv_roundtrip_lossless(self, tmp_path):
        values = np.asarray([0.1, -0.25, 0.3333333333333333])
        path = tmp_path / "stream.csv"
        save_stream_csv(path, values)
        loaded = load_stream_csv(path)
        assert np.array_equal(loaded, values)

    def test_npy_roundtrip(self, tmp_path):
        rng = np.random.default_rng(3)
        values = rng.uniform(-0.4, 0.4, size=257)
        path = tmp_path / "stream.npy"
        save_stream_npy(path, values)
        assert np.array_equal(load_stream_npy(path), values)

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(StreamError):
            load_stream_csv(tmp_path / "absent.csv")
        with pytest.raises(StreamError):
            load_stream_npy(tmp_path / "absent.npy")

    def test_empty_csv_rejected(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("value\n")
        with pytest.raises(StreamError):
            load_stream_csv(path)


class TestSyntheticIrtf:
    def test_reference_shape(self):
        values, meta = synthetic_irtf_month()
        assert len(values) == IRTF_N_READINGS == 21630
        assert meta.rate_hz == pytest.approx(1.0 / IRTF_CADENCE_SECONDS)
        assert meta.units == "celsius"

    def test_range_matches_paper_description(self):
        values, _ = synthetic_irtf_month()
        assert values.min() >= 0.0
        assert values.max() <= 35.0
        assert 5.0 < values.mean() < 25.0

    def test_deterministic_reference_dataset(self):
        a, _ = synthetic_irtf_month()
        b, _ = synthetic_irtf_month()
        assert np.array_equal(a, b)

    def test_diurnal_cycle_present(self):
        """Dominant periodicity near 720 samples (24 h at 2-min cadence)."""
        values, _ = synthetic_irtf_month(n_readings=720 * 8)
        centered = values - values.mean()
        spectrum = np.abs(np.fft.rfft(centered))
        spectrum[0] = 0.0
        peak = int(np.argmax(spectrum[1:40])) + 1
        period = len(values) / peak
        assert 500 < period < 1000

    def test_minimum_length_enforced(self):
        with pytest.raises(ParameterError):
            synthetic_irtf_month(n_readings=100)
