"""Tests for the Sec-5 attack mathematics — the paper's worked numbers."""

from __future__ import annotations

import pytest

from repro.analysis.attack_math import (
    altered_pair_count,
    attack_success_probability,
    extra_data_fraction,
    prob_all_removed,
    weakening_factor,
)
from repro.errors import ParameterError


class TestAlteredPairCount:
    def test_paper_example(self):
        # a=6, a2=50%: c_m = 15 (the paper's x+t = 15).
        assert altered_pair_count(6, 0.5) == 15.0

    def test_full_alteration_kills_all_pairs(self):
        # a2=1: every one of the a(a+1)/2 averages contains an altered
        # item: c_m = a(a+1)/2.
        for a in (3, 5, 8):
            assert altered_pair_count(a, 1.0) == a * (a + 1) / 2

    def test_monotone_in_a2(self):
        values = [altered_pair_count(6, a2) for a2 in (0.2, 0.5, 0.9)]
        assert values[0] < values[1] < values[2]

    def test_validation(self):
        with pytest.raises(ParameterError):
            altered_pair_count(0, 0.5)
        with pytest.raises(ParameterError):
            altered_pair_count(5, 0.0)


class TestProbAllRemoved:
    def test_paper_example(self):
        # P(15, 10, 21) = C(11, 5) / C(21, 15) ~ 0.85%.
        assert prob_all_removed(15, 10, 21) == pytest.approx(0.0085, abs=2e-4)

    def test_impossible_when_fewer_removals_than_active(self):
        assert prob_all_removed(3, 5, 10) == 0.0

    def test_certain_when_everything_removed(self):
        assert prob_all_removed(10, 4, 10) == 1.0

    def test_probability_bounds(self):
        for removals in range(0, 22):
            p = prob_all_removed(removals, 10, 21)
            assert 0.0 <= p <= 1.0

    def test_validation(self):
        with pytest.raises(ParameterError):
            prob_all_removed(5, 11, 10)
        with pytest.raises(ParameterError):
            prob_all_removed(11, 5, 10)


class TestComposedAttackSuccess:
    def test_paper_composition(self):
        # a1=5, a=6, a4=50%, a2=50% => P ~ 0.85%.
        p = attack_success_probability(6, 0.5, 0.5)
        assert p == pytest.approx(0.0085, abs=2e-4)

    def test_more_active_averages_harder_to_kill(self):
        p_few = attack_success_probability(6, 0.5, 0.3)
        p_many = attack_success_probability(6, 0.5, 0.9)
        assert p_many < p_few


class TestWeakening:
    def test_bounded_by_one(self):
        for a1 in (2, 5, 10):
            for a2 in (0.1, 0.5, 1.0):
                assert 0.0 <= weakening_factor(a1, 6, a2) <= 1.0

    def test_rarer_attacks_weaken_less(self):
        assert weakening_factor(10, 6, 0.5) < weakening_factor(2, 6, 0.5)

    def test_validation(self):
        with pytest.raises(ParameterError):
            weakening_factor(1, 6, 0.5)


class TestExtraData:
    def test_paper_conclusion(self):
        # a1=5, P ~ 0.85% => ~4.25% more data for equal convinceability.
        p = attack_success_probability(6, 0.5, 0.5)
        assert extra_data_fraction(5, p) == pytest.approx(0.0425, abs=1e-3)

    def test_validation(self):
        with pytest.raises(ParameterError):
            extra_data_fraction(1, 0.01)
        with pytest.raises(ParameterError):
            extra_data_fraction(5, 1.5)
