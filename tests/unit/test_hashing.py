"""Unit and property tests for the keyed one-way hash H(V, k)."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import KeyError_, ParameterError
from repro.util.hashing import H, KeyedHasher, PatternProber, hash_to_int


class TestH:
    def test_deterministic(self):
        assert H(42, b"k1") == H(42, b"k1")

    def test_value_sensitivity(self):
        assert H(42, b"k1") != H(43, b"k1")

    def test_key_sensitivity(self):
        assert H(42, b"k1") != H(42, b"k2")

    def test_accepts_str_and_int_keys(self):
        assert H(1, "secret") == H(1, b"secret")
        assert isinstance(H(1, 12345), int)

    def test_string_values_length_prefixed(self):
        # Length prefixing prevents concatenation ambiguity.
        assert H("ab", b"k") != H("a", b"k")

    def test_rejects_empty_key(self):
        with pytest.raises(KeyError_):
            H(1, b"")

    def test_rejects_negative_value(self):
        with pytest.raises(ParameterError):
            H(-1, b"k")

    def test_rejects_bool_value(self):
        with pytest.raises(ParameterError):
            H(True, b"k")

    @given(st.integers(0, 2**64), st.integers(0, 2**64))
    def test_distinct_ints_rarely_collide(self, a, b):
        if a != b:
            assert H(a, b"k") != H(b, b"k")


class TestHashToInt:
    def test_md5_width(self):
        assert hash_to_int(b"x").bit_length() <= 128

    def test_sha256_width(self):
        value = hash_to_int(b"x", "sha256")
        assert value.bit_length() <= 256

    def test_unknown_algorithm_rejected(self):
        with pytest.raises(ParameterError):
            hash_to_int(b"x", "crc32")


class TestKeyedHasher:
    def test_mod_in_range(self):
        hasher = KeyedHasher(b"k1")
        for value in range(100):
            assert 0 <= hasher.mod(value, 7) < 7

    def test_mod_rejects_nonpositive_modulus(self):
        with pytest.raises(ParameterError):
            KeyedHasher(b"k").mod(1, 0)

    def test_low_bits_width(self):
        hasher = KeyedHasher(b"k1")
        for value in range(50):
            assert 0 <= hasher.low_bits(value, 3) < 8

    def test_low_bits_roughly_uniform(self):
        """Diffusion: with omega=1 about half the hashes end in 1."""
        hasher = KeyedHasher(b"k1")
        ones = sum(hasher.low_bits(v, 1) for v in range(2000))
        assert 850 < ones < 1150

    def test_matches_module_level_h(self):
        hasher = KeyedHasher(b"k1")
        assert hasher.hash_int(99) == H(99, b"k1")

    def test_derive_changes_outputs(self):
        hasher = KeyedHasher(b"k1")
        derived = hasher.derive("other-purpose")
        assert hasher.hash_int(5) != derived.hash_int(5)

    def test_derive_is_deterministic(self):
        a = KeyedHasher(b"k1").derive("p")
        b = KeyedHasher(b"k1").derive("p")
        assert a.hash_int(5) == b.hash_int(5)

    def test_rejects_unknown_algorithm(self):
        with pytest.raises(ParameterError):
            KeyedHasher(b"k1", algorithm="md4")


class TestPatternProber:
    def test_matches_convention_pattern(self):
        from repro.core.encoding_multihash import convention_pattern

        prober = PatternProber(b"k1", omega=3)
        for avg_key in range(40):
            assert prober.pattern(avg_key, 9) == \
                convention_pattern(b"k1", avg_key, 9, 3)

    def test_patterns_matches_scalar_probes(self):
        prober = PatternProber(b"k1", omega=2)
        avg_keys = list(range(0, 400, 7))
        assert prober.patterns(avg_keys, 5) == \
            [prober.pattern(a, 5) for a in avg_keys]

    def test_full_memo_keeps_recent_hits(self):
        """Regression: eviction must keep the *young* half of the memo.

        The old behaviour wiped the whole table at the limit, which
        discarded the hot (avg_key, label) pairs the pruned search was
        actively re-testing.  Filling the memo past its limit must
        leave the most recent probes cached.
        """
        prober = PatternProber(b"k1", omega=2, memo_limit=8)
        for avg_key in range(9):  # the 9th insert triggers eviction
            prober.pattern(avg_key, 1)
        assert len(prober) == 5  # survivors (4 young) + the new entry
        memo = prober._memo
        # The most recent pre-eviction probes survived...
        for avg_key in (5, 6, 7, 8):
            assert (avg_key, 1) in memo
        # ...and the oldest were the ones dropped.
        for avg_key in (0, 1, 2, 3):
            assert (avg_key, 1) not in memo

    def test_eviction_preserves_values(self):
        prober = PatternProber(b"k1", omega=3, memo_limit=4)
        fresh = PatternProber(b"k1", omega=3)
        for avg_key in range(50):
            assert prober.pattern(avg_key, 2) == fresh.pattern(avg_key, 2)

    def test_validation(self):
        with pytest.raises(ParameterError):
            PatternProber(b"k1", omega=0)
        with pytest.raises(ParameterError):
            PatternProber(b"k1", omega=1, memo_limit=1)
        with pytest.raises(ParameterError):
            PatternProber(b"k1", omega=1, algorithm="md4")
