"""Tests for extremes, characteristic subsets, majorness, zigzag scans."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.extremes import (
    MAXIMUM,
    MINIMUM,
    Extreme,
    ZigzagState,
    average_subset_size,
    characteristic_subset,
    estimate_eta,
    find_extremes,
    find_major_extremes,
    zigzag_pivots,
)
from repro.errors import ParameterError
from repro.streams.generators import TemperatureSensorGenerator


def triangle_wave(n_periods: int = 5, half: int = 20,
                  amplitude: float = 0.4) -> np.ndarray:
    """Deterministic alternating ramps with known extreme positions."""
    up = np.linspace(-amplitude, amplitude, half, endpoint=False)
    down = np.linspace(amplitude, -amplitude, half, endpoint=False)
    return np.concatenate([np.concatenate([up, down])
                           for _ in range(n_periods)])


class TestZigzag:
    def test_triangle_extremes_found(self):
        wave = triangle_wave()
        pivots, _ = zigzag_pivots(wave, prominence=0.1)
        kinds = [k for _, k in pivots]
        # Strict alternation between maxima and minima.
        assert all(a != b for a, b in zip(kinds, kinds[1:]))
        assert len(pivots) >= 8

    def test_pivot_positions_on_triangle(self):
        wave = triangle_wave(n_periods=2, half=10)
        pivots, _ = zigzag_pivots(wave, prominence=0.1)
        maxima = [i for i, k in pivots if k == MAXIMUM]
        # The first full peak value (0.4) sits at index 10 (the start of
        # the descending ramp); the boundary minimum at index 0 must not
        # be reported.
        assert maxima[0] == 10
        assert (0, MINIMUM) not in pivots

    def test_small_wiggles_below_prominence_ignored(self):
        wave = triangle_wave()
        noisy = wave + 0.001 * np.sin(np.arange(len(wave)) * 2.0)
        clean_pivots, _ = zigzag_pivots(wave, prominence=0.1)
        noisy_pivots, _ = zigzag_pivots(noisy, prominence=0.1)
        assert len(noisy_pivots) == len(clean_pivots)

    def test_monotone_has_no_pivots(self):
        pivots, _ = zigzag_pivots(np.linspace(-0.4, 0.4, 100),
                                  prominence=0.05)
        assert pivots == []

    def test_prominence_must_be_positive(self):
        with pytest.raises(ParameterError):
            zigzag_pivots(np.zeros(4), prominence=0.0)

    @settings(max_examples=40)
    @given(st.integers(0, 2**31), st.integers(1, 6))
    def test_continuation_equals_whole_array_scan(self, seed, n_splits):
        """The streaming scan must reproduce the offline pivot sequence."""
        values = TemperatureSensorGenerator(eta=30, seed=seed).generate(1200)
        whole, _ = zigzag_pivots(values, prominence=0.05)
        state = ZigzagState.fresh()
        streamed: list[tuple[int, int]] = []
        boundaries = np.linspace(0, len(values), n_splits + 1, dtype=int)
        for lo, hi in zip(boundaries[:-1], boundaries[1:]):
            pivots, state = zigzag_pivots(values[lo:hi], prominence=0.05,
                                          state=state, offset=int(lo))
            streamed.extend(pivots)
        assert streamed == whole

    def test_after_extreme_state_resumes_descent(self):
        """Resuming after a max must not re-report a boundary max."""
        wave = triangle_wave(n_periods=1, half=20)
        # Simulate having just processed the max at index 19.
        state = ZigzagState.after_extreme(MAXIMUM, 20, float(wave[20]))
        pivots, _ = zigzag_pivots(wave[20:], prominence=0.1, state=state,
                                  offset=20)
        assert all(k == MINIMUM or i > 20 for i, k in pivots)


class TestCharacteristicSubset:
    def test_expands_within_delta(self):
        values = np.array([0.0, 0.38, 0.395, 0.4, 0.39, 0.37, 0.0])
        start, end = characteristic_subset(values, 3, delta=0.02)
        assert (start, end) == (2, 4)

    def test_wider_delta_wider_subset(self):
        values = np.array([0.0, 0.38, 0.395, 0.4, 0.39, 0.37, 0.0])
        narrow = characteristic_subset(values, 3, delta=0.01)
        wide = characteristic_subset(values, 3, delta=0.05)
        assert wide[0] <= narrow[0] and wide[1] >= narrow[1]

    def test_contiguity_gap_stops_expansion(self):
        # 0.4-plateau interrupted by a far value: expansion must stop
        # even though a later item is again within delta.
        values = np.array([0.399, 0.2, 0.4, 0.399, 0.398])
        start, end = characteristic_subset(values, 2, delta=0.02)
        assert start == 2  # the 0.399 at index 0 is NOT reachable

    def test_bounds_validation(self):
        with pytest.raises(ParameterError):
            characteristic_subset(np.zeros(3), 5, delta=0.1)
        with pytest.raises(ParameterError):
            characteristic_subset(np.zeros(3), 0, delta=0.0)

    @given(st.integers(0, 2**31))
    @settings(max_examples=30)
    def test_subset_items_within_delta(self, seed):
        values = TemperatureSensorGenerator(eta=40, seed=seed).generate(800)
        for extreme in find_extremes(values, prominence=0.05, delta=0.02):
            subset = values[extreme.subset_start:extreme.subset_end + 1]
            assert np.all(np.abs(subset - extreme.value) < 0.02)
            assert extreme.subset_start <= extreme.index <= extreme.subset_end


class TestMajorness:
    def test_strict_majorness(self):
        extreme = Extreme(index=5, value=0.4, kind=MAXIMUM,
                          subset_start=3, subset_end=7)
        assert extreme.subset_size == 5
        assert extreme.is_major(sigma=5)
        assert not extreme.is_major(sigma=6)

    def test_relaxed_majorness(self):
        extreme = Extreme(index=5, value=0.4, kind=MAXIMUM,
                          subset_start=4, subset_end=7)
        # |xi| = 4 < sigma = 5, but 4 >= 5 * 0.7 (the paper's 70% rule).
        assert not extreme.is_major(sigma=5)
        assert extreme.is_major(sigma=5, relaxation=0.7)

    def test_major_filter(self):
        values = TemperatureSensorGenerator(eta=60, seed=12).generate(3000)
        all_extremes = find_extremes(values, prominence=0.05, delta=0.02)
        majors = find_major_extremes(values, prominence=0.05, delta=0.02,
                                     sigma=3)
        assert len(majors) <= len(all_extremes)
        assert all(e.subset_size >= 3 for e in majors)

    def test_invalid_majorness_args(self):
        extreme = Extreme(index=0, value=0.0, kind=MINIMUM,
                          subset_start=0, subset_end=0)
        with pytest.raises(ParameterError):
            extreme.is_major(sigma=0)
        with pytest.raises(ParameterError):
            extreme.is_major(sigma=1, relaxation=0.0)


class TestStreamStatistics:
    def test_average_subset_size_positive(self):
        values = TemperatureSensorGenerator(eta=60, seed=12).generate(3000)
        assert average_subset_size(values, prominence=0.05, delta=0.02) > 1.0

    def test_average_subset_size_no_extremes(self):
        assert average_subset_size(np.linspace(-0.4, 0.4, 50),
                                   prominence=0.05, delta=0.02) == 0.0

    def test_estimate_eta_inf_when_no_majors(self):
        assert estimate_eta(np.linspace(-0.4, 0.4, 50), prominence=0.05,
                            delta=0.02, sigma=3) == float("inf")

    def test_estimate_eta_scale(self):
        values = TemperatureSensorGenerator(eta=80, seed=12).generate(8000)
        measured = estimate_eta(values, prominence=0.05, delta=0.02, sigma=3)
        assert 20 < measured < 240
