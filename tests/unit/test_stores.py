"""Checkpoint store backends: contract, atomicity, corruption handling.

Both backends run the same contract suite (envelope round-trip, sequence
numbering, missing-id errors); the directory backend additionally proves
its atomic-write discipline and that arbitrary stream ids survive the
file-name encoding.  Corrupt entries — truncated JSON, wrong kinds,
future versions, hand-edited envelopes — must all raise
:class:`repro.errors.CheckpointStoreError`, never restore garbage.
"""

from __future__ import annotations

import json
import os

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import CheckpointStoreError
from repro.stores import DirectoryCheckpointStore, MemoryCheckpointStore

STATE = {"kind": "protection-session", "format_version": 1,
         "config": {"encoding": "multihash"}, "scan": {"counters": {}}}


@pytest.fixture(params=["memory", "directory"])
def store(request, tmp_path):
    """One instance of each backend, same contract."""
    if request.param == "memory":
        return MemoryCheckpointStore()
    return DirectoryCheckpointStore(tmp_path / "store")


class TestContract:
    def test_save_load_roundtrip(self, store):
        store.save("s1", STATE)
        assert store.load("s1") == STATE

    def test_sequence_increments_per_save(self, store):
        assert store.save("s1", STATE) == 1
        assert store.save("s1", STATE) == 2
        assert store.save("other", STATE) == 1
        assert store.entry("s1")["sequence"] == 2

    def test_latest_wins(self, store):
        store.save("s1", dict(STATE, extra=1))
        store.save("s1", dict(STATE, extra=2))
        assert store.load("s1")["extra"] == 2

    def test_ids_sorted_and_len(self, store):
        for stream_id in ("b", "a", "c"):
            store.save(stream_id, STATE)
        assert store.ids() == ("a", "b", "c")
        assert len(store) == 3
        assert "a" in store and "zz" not in store

    def test_delete(self, store):
        store.save("s1", STATE)
        store.delete("s1")
        assert "s1" not in store
        with pytest.raises(CheckpointStoreError, match="no checkpoint"):
            store.delete("s1")

    def test_load_missing_id_is_clean_error(self, store):
        with pytest.raises(CheckpointStoreError, match="no checkpoint"):
            store.load("never-saved")

    def test_non_dict_state_rejected(self, store):
        with pytest.raises(CheckpointStoreError, match="dict"):
            store.save("s1", [1, 2, 3])

    def test_bad_stream_id_rejected(self, store):
        with pytest.raises(CheckpointStoreError, match="stream id"):
            store.save("", STATE)
        with pytest.raises(CheckpointStoreError, match="stream id"):
            store.save(7, STATE)

    def test_unserializable_state_rejected_identically(self, store):
        """numpy arrays (and friends) fail in BOTH backends, not just
        the durable one — no backend-dependent surprises."""
        import numpy as np

        with pytest.raises(CheckpointStoreError,
                           match="JSON-serializable"):
            store.save("s1", {"window": np.zeros(3)})

    def test_stored_state_immune_to_caller_mutation(self, store):
        state = {"kind": "protection-session", "nested": {"x": 1}}
        store.save("s1", state)
        state["nested"]["x"] = 999
        assert store.load("s1")["nested"]["x"] == 1


class TestDirectoryBackend:
    def test_no_temp_files_left_behind(self, tmp_path):
        store = DirectoryCheckpointStore(tmp_path)
        for i in range(5):
            store.save("s1", dict(STATE, i=i))
        leftovers = [p for p in tmp_path.iterdir()
                     if not p.name.endswith(".json")
                     and not p.name.rsplit(".", 1)[-1].isdigit()]
        assert leftovers == []

    def test_envelope_written_to_disk(self, tmp_path):
        store = DirectoryCheckpointStore(tmp_path)
        store.save("s1", STATE)
        entry = json.loads((tmp_path / "s1.json").read_text())
        assert entry["kind"] == "hub-checkpoint"
        assert entry["stream_id"] == "s1"
        assert entry["sequence"] == 1
        assert entry["state"] == STATE

    def test_unsafe_stream_ids_roundtrip(self, tmp_path):
        store = DirectoryCheckpointStore(tmp_path)
        ids = ("tenant/sensor-1", "..", "a b", "söns≤r", "%41")
        for stream_id in ids:
            store.save(stream_id, dict(STATE, id=stream_id))
        assert store.ids() == tuple(sorted(ids))
        for stream_id in ids:
            assert store.load(stream_id)["id"] == stream_id
        # every file stays inside the store directory
        for entry in tmp_path.iterdir():
            assert entry.parent == tmp_path

    def test_missing_directory_without_create_is_error(self, tmp_path):
        with pytest.raises(CheckpointStoreError, match="does not exist"):
            DirectoryCheckpointStore(tmp_path / "nope", create=False)

    def test_path_is_a_file_is_error(self, tmp_path):
        target = tmp_path / "occupied"
        target.write_text("not a directory")
        with pytest.raises(CheckpointStoreError, match="not a directory"):
            DirectoryCheckpointStore(target)

    def test_reopen_continues_sequence(self, tmp_path):
        DirectoryCheckpointStore(tmp_path).save("s1", STATE)
        assert DirectoryCheckpointStore(tmp_path).save("s1", STATE) == 2


class TestCorruptEntries:
    @pytest.fixture()
    def dir_store(self, tmp_path):
        store = DirectoryCheckpointStore(tmp_path)
        store.save("s1", STATE)
        return store

    def corrupt(self, dir_store, mutate) -> None:
        path = dir_store.path / "s1.json"
        mutated = mutate(json.loads(path.read_text()))
        path.write_text(json.dumps(mutated))

    def test_truncated_json_is_clean_error(self, dir_store):
        path = dir_store.path / "s1.json"
        path.write_text(path.read_text()[:25])
        with pytest.raises(CheckpointStoreError, match="not valid JSON"):
            dir_store.load("s1")

    def test_wrong_entry_kind_rejected(self, dir_store):
        self.corrupt(dir_store,
                     lambda e: dict(e, kind="something-else"))
        with pytest.raises(CheckpointStoreError, match="kind"):
            dir_store.load("s1")

    def test_newer_version_rejected(self, dir_store):
        self.corrupt(dir_store, lambda e: dict(e, format_version=99))
        with pytest.raises(CheckpointStoreError, match="newer"):
            dir_store.load("s1")

    def test_unknown_envelope_field_rejected(self, dir_store):
        self.corrupt(dir_store, lambda e: dict(e, smuggled=True))
        with pytest.raises(CheckpointStoreError, match="unknown"):
            dir_store.load("s1")

    def test_non_dict_state_in_entry_rejected(self, dir_store):
        self.corrupt(dir_store, lambda e: dict(e, state="oops"))
        with pytest.raises(CheckpointStoreError, match="state"):
            dir_store.load("s1")

    def test_missing_sequence_rejected(self, dir_store):
        self.corrupt(dir_store,
                     lambda e: {k: v for k, v in e.items()
                                if k != "sequence"})
        with pytest.raises(CheckpointStoreError, match="sequence"):
            dir_store.load("s1")

    def test_non_object_entry_rejected(self, dir_store):
        (dir_store.path / "s1.json").write_text("[1, 2, 3]")
        with pytest.raises(CheckpointStoreError, match="object"):
            dir_store.load("s1")

    def test_save_over_corrupt_entry_propagates(self, dir_store):
        """Overwriting a corrupt checkpoint must not silently restart
        the sequence over garbage."""
        (dir_store.path / "s1.json").write_text("{")
        with pytest.raises(CheckpointStoreError):
            dir_store.save("s1", STATE)


class TestGenerations:
    """The last-good-checkpoint ladder: rotation, fallback, quarantine."""

    def test_generations_accumulate_up_to_the_cap(self, tmp_path):
        store = DirectoryCheckpointStore(tmp_path, generations=3)
        for i in range(1, 6):
            store.save("s", dict(STATE, n=i))
        latest = json.loads((tmp_path / "s.json").read_text())
        gen1 = json.loads((tmp_path / "s.json.1").read_text())
        gen2 = json.loads((tmp_path / "s.json.2").read_text())
        assert (latest["sequence"], gen1["sequence"],
                gen2["sequence"]) == (5, 4, 3)
        assert not (tmp_path / "s.json.3").exists()

    def test_generation_files_are_invisible_to_ids(self, tmp_path):
        store = DirectoryCheckpointStore(tmp_path, generations=3)
        for i in range(4):
            store.save("s", dict(STATE, n=i))
        assert store.ids() == ("s",)
        assert len(store) == 1

    def test_corrupt_latest_falls_back_and_quarantines(self, tmp_path):
        store = DirectoryCheckpointStore(tmp_path, generations=3)
        for i in range(1, 4):
            store.save("s", dict(STATE, n=i))
        (tmp_path / "s.json").write_text('{"kind": "hub-ch')  # torn
        entry = store.entry("s")
        assert entry["sequence"] == 2
        assert entry["state"]["n"] == 2
        assert store.fallbacks == 1
        assert store.quarantined == 1
        quarantined = list((tmp_path / "corrupt").iterdir())
        assert [p.name for p in quarantined] == ["s.json"]
        # The promoted generation IS the latest now; a fresh store sees
        # a normal, intact entry and the sequence resumes from it.
        fresh = DirectoryCheckpointStore(tmp_path, generations=3)
        assert fresh.load("s")["n"] == 2
        assert fresh.save("s", dict(STATE, n=9)) == 3

    def test_all_generations_corrupt_still_raises(self, tmp_path):
        store = DirectoryCheckpointStore(tmp_path, generations=3)
        for i in range(1, 4):
            store.save("s", dict(STATE, n=i))
        for name in ("s.json", "s.json.1", "s.json.2"):
            (tmp_path / name).write_text("{garbage")
        with pytest.raises(CheckpointStoreError, match="not valid JSON"):
            store.entry("s")
        assert store.fallbacks == 0
        # The damaged generations were moved aside, but the latest is
        # left in place: the stream stays visibly present-and-corrupt
        # instead of masquerading as deleted.
        assert store.quarantined == 2
        assert (tmp_path / "s.json").exists()
        assert "s" in store

    def test_single_generation_store_keeps_old_semantics(self, tmp_path):
        store = DirectoryCheckpointStore(tmp_path, generations=1)
        store.save("s", dict(STATE, n=1))
        store.save("s", dict(STATE, n=2))
        assert not (tmp_path / "s.json.1").exists()
        (tmp_path / "s.json").write_text("{")
        with pytest.raises(CheckpointStoreError):
            store.load("s")

    def test_save_over_corrupt_latest_recovers_sequence(self, tmp_path):
        """With a generation behind it, saving over a corrupt latest
        recovers the sequence from the fallback instead of raising."""
        store = DirectoryCheckpointStore(tmp_path, generations=3)
        store.save("s", dict(STATE, n=1))
        store.save("s", dict(STATE, n=2))
        (tmp_path / "s.json").write_text("{")
        assert store.save("s", dict(STATE, n=3)) == 2  # resumes after 1
        assert store.load("s")["n"] == 3

    def test_delete_removes_generations_too(self, tmp_path):
        store = DirectoryCheckpointStore(tmp_path, generations=3)
        for i in range(4):
            store.save("s", dict(STATE, n=i))
        store.delete("s")
        leftovers = [p.name for p in tmp_path.iterdir()
                     if p.name.startswith("s.json")]
        assert leftovers == []


class _Killed(BaseException):
    """Simulates the process dying at an exact point (not an OSError,
    so the store's own error handling cannot intercept it)."""


class TestCrashWindows:
    """Kill the writer inside `_put`'s two crash windows and prove the
    prior generation survives, bit-identical, for recovery."""

    def _seeded(self, tmp_path):
        store = DirectoryCheckpointStore(tmp_path, generations=3)
        store.save("s", dict(STATE, n=1))
        store.save("s", dict(STATE, n=2))
        return store, (tmp_path / "s.json").read_bytes()

    def test_kill_between_payload_fsync_and_replace(self, tmp_path,
                                                    monkeypatch):
        """Window 1: the new entry is written and fsynced to the temp
        file, but the rename never happens.  The latest on disk must
        still be the previous complete checkpoint, byte for byte."""
        import repro.stores as stores_module

        store, before = self._seeded(tmp_path)
        real_replace = os.replace

        def dying_replace(src, dst, *args, **kwargs):
            if str(src).endswith(".tmp") and str(dst).endswith("s.json"):
                raise _Killed()
            return real_replace(src, dst, *args, **kwargs)

        monkeypatch.setattr(stores_module.os, "replace", dying_replace)
        with pytest.raises(_Killed):
            store.save("s", dict(STATE, n=3))
        monkeypatch.undo()

        assert (tmp_path / "s.json").read_bytes() == before
        recovered = DirectoryCheckpointStore(tmp_path, generations=3)
        assert recovered.load("s")["n"] == 2
        assert recovered.entry("s")["sequence"] == 2
        # Recovery continues exactly where the last durable save ended.
        assert recovered.save("s", dict(STATE, n=3)) == 3

    def test_kill_between_replace_and_directory_fsync(self, tmp_path,
                                                      monkeypatch):
        """Window 2: the rename landed but the directory fsync did not.
        The new entry is readable and the previous one survives as
        generation 1 — no window ever has zero intact checkpoints."""
        import repro.stores as stores_module

        store, before = self._seeded(tmp_path)
        real_fsync = os.fsync
        calls = {"n": 0}

        def dying_fsync(fd):
            calls["n"] += 1
            if calls["n"] == 2:  # 1st: payload fd; 2nd: directory fd
                raise _Killed()
            return real_fsync(fd)

        monkeypatch.setattr(stores_module.os, "fsync", dying_fsync)
        with pytest.raises(_Killed):
            store.save("s", dict(STATE, n=3))
        monkeypatch.undo()

        recovered = DirectoryCheckpointStore(tmp_path, generations=3)
        assert recovered.load("s")["n"] == 3
        assert (tmp_path / "s.json.1").read_bytes() == before
        assert recovered.save("s", dict(STATE, n=4)) == 4

    def test_kill_during_rotation_leaves_an_intact_latest(self, tmp_path,
                                                          monkeypatch):
        """Window 0: dying while generations shift must never remove
        the latest entry (rotation links, it does not move)."""
        import repro.stores as stores_module

        store, before = self._seeded(tmp_path)
        real_link = os.link

        def dying_link(src, dst, *args, **kwargs):
            raise _Killed()

        monkeypatch.setattr(stores_module.os, "link", dying_link)
        with pytest.raises(_Killed):
            store.save("s", dict(STATE, n=3))
        monkeypatch.undo()
        assert real_link is os.link

        assert (tmp_path / "s.json").read_bytes() == before
        recovered = DirectoryCheckpointStore(tmp_path, generations=3)
        assert recovered.load("s")["n"] == 2


class TestStreamIdFuzz:
    # max 24 chars: percent-encoding can expand a char to 9 bytes and
    # the encoded name must stay under the 255-byte filename limit.
    @given(stream_id=st.text(min_size=1, max_size=24))
    def test_any_reasonable_id_roundtrips_on_disk(self, stream_id,
                                                  tmp_path_factory):
        store = DirectoryCheckpointStore(
            tmp_path_factory.mktemp("fuzz-store"))
        store.save(stream_id, dict(STATE, marker="here"))
        assert store.ids() == (stream_id,)
        assert store.load(stream_id)["marker"] == "here"
        file_names = [p.name for p in store.path.iterdir()]
        assert all(os.sep not in name for name in file_names)


class TestBuildStore:
    def test_builds_registered_backends(self, tmp_path):
        from repro.stores import (DirectoryCheckpointStore,
                                  MemoryCheckpointStore, build_store)

        assert isinstance(build_store("memory"), MemoryCheckpointStore)
        directory = build_store("directory", tmp_path / "d")
        assert isinstance(directory, DirectoryCheckpointStore)

    def test_directory_without_path_is_clean_error(self):
        from repro.errors import CheckpointStoreError
        from repro.stores import build_store

        with pytest.raises(CheckpointStoreError, match="needs a path"):
            build_store("directory")

    def test_memory_with_path_is_clean_error(self, tmp_path):
        from repro.errors import CheckpointStoreError
        from repro.stores import build_store

        with pytest.raises(CheckpointStoreError, match="not take a path"):
            build_store("memory", tmp_path)

    def test_unknown_backend_lists_valid_names(self):
        from repro.errors import RegistryError
        from repro.stores import build_store

        with pytest.raises(RegistryError, match="memory"):
            build_store("no-such-backend")
