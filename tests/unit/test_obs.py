"""The observability registry: exact under threads, free when off.

The contracts ISSUE 9 names: counters hammered from many threads never
lose an increment, histogram bucket totals conserve the observation
count, a disabled registry costs a no-op method call and snapshots to
``{"enabled": False}``, and callback gauges are sampled only when a
snapshot is actually taken.
"""

from __future__ import annotations

import json
import threading

import pytest

from repro.obs import (
    LATENCY_MS_BUCKETS,
    LATENCY_US_BUCKETS,
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        counter = Counter()
        assert counter.value == 0
        counter.inc()
        counter.inc(41)
        assert counter.value == 42

    def test_monotonic_negative_inc_rejected(self):
        counter = Counter()
        with pytest.raises(ValueError, match="monotonic"):
            counter.inc(-1)
        assert counter.value == 0

    def test_zero_inc_allowed(self):
        counter = Counter()
        counter.inc(0)
        assert counter.value == 0


class TestGauge:
    def test_moves_both_ways(self):
        gauge = Gauge()
        gauge.set(10.0)
        gauge.inc(2.5)
        gauge.dec(0.5)
        assert gauge.value == 12.0


class TestHistogram:
    def test_empty_snapshot(self):
        snap = Histogram().snapshot()
        assert snap["count"] == 0
        assert snap["p50"] is None
        assert snap["p99"] is None
        assert snap["mean"] is None
        assert snap["buckets"] == {}

    def test_exact_aggregates_ride_along(self):
        hist = Histogram(buckets=(1.0, 10.0, 100.0))
        for value in (0.5, 5.0, 50.0, 500.0):
            hist.observe(value)
        snap = hist.snapshot()
        assert snap["count"] == 4
        assert snap["sum"] == 555.5
        assert snap["min"] == 0.5
        assert snap["max"] == 500.0
        assert snap["mean"] == pytest.approx(138.875)

    def test_bucket_totals_conserve_count(self):
        hist = Histogram(buckets=LATENCY_US_BUCKETS)
        for i in range(1000):
            hist.observe(float(i * 7 % 2_000_000))
        snap = hist.snapshot()
        assert sum(snap["buckets"].values()) == snap["count"] == 1000

    def test_overflow_bucket_reported_as_inf(self):
        hist = Histogram(buckets=(1.0,))
        hist.observe(1e9)
        snap = hist.snapshot()
        assert snap["buckets"] == {"+Inf": 1}
        # Overflow has no upper bound: quantiles fall back to the max.
        assert snap["p99"] == 1e9

    def test_quantiles_interpolate_and_clamp(self):
        hist = Histogram(buckets=(10.0, 20.0))
        for _ in range(100):
            hist.observe(15.0)
        # All mass in (10, 20]; interpolation is clamped to the
        # observed extremes so a single-value stream reports itself.
        assert hist.quantile(0.5) == 15.0
        assert hist.quantile(0.99) == 15.0

    def test_quantile_ordering(self):
        hist = Histogram(buckets=LATENCY_MS_BUCKETS)
        for i in range(1, 1001):
            hist.observe(i / 100.0)  # 0.01 .. 10.0 ms
        snap = hist.snapshot()
        assert snap["p50"] <= snap["p95"] <= snap["p99"] <= snap["max"]
        assert snap["p50"] == pytest.approx(5.0, rel=0.2)

    def test_bad_bucket_bounds_rejected(self):
        with pytest.raises(ValueError, match="ascending"):
            Histogram(buckets=(5.0, 1.0))
        with pytest.raises(ValueError, match="ascending"):
            Histogram(buckets=(1.0, 1.0))
        with pytest.raises(ValueError, match="ascending"):
            Histogram(buckets=())

    def test_snapshot_is_json_safe(self):
        hist = Histogram(buckets=(1.0, 2.5))
        hist.observe(0.2)
        hist.observe(9.9)
        json.dumps(hist.snapshot())


class TestThreadSafety:
    """CPython ``+=`` is not atomic; the instruments must be."""

    THREADS = 8
    ROUNDS = 2500

    def _hammer(self, work):
        threads = [threading.Thread(target=work) for _ in range(self.THREADS)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

    def test_counter_is_exact_under_contention(self):
        registry = MetricsRegistry()
        def work():
            counter = registry.counter("hammered_total", worker="shared")
            for _ in range(self.ROUNDS):
                counter.inc()
        self._hammer(work)
        assert registry.counter("hammered_total", worker="shared").value \
            == self.THREADS * self.ROUNDS

    def test_histogram_conserves_under_contention(self):
        hist = Histogram(buckets=(1.0, 10.0, 100.0))
        def work():
            for i in range(self.ROUNDS):
                hist.observe(float(i % 200))
        self._hammer(work)
        snap = hist.snapshot()
        total = self.THREADS * self.ROUNDS
        assert snap["count"] == total
        assert sum(snap["buckets"].values()) == total

    def test_registry_factory_race_yields_one_instrument(self):
        registry = MetricsRegistry()
        seen = []
        def work():
            for _ in range(200):
                seen.append(registry.counter("raced_total", t="x"))
        self._hammer(work)
        assert len({id(instrument) for instrument in seen}) == 1


class TestRegistry:
    def test_instruments_cached_by_name_and_labels(self):
        registry = MetricsRegistry()
        a = registry.counter("pushes_total", tenant="acme")
        b = registry.counter("pushes_total", tenant="acme")
        c = registry.counter("pushes_total", tenant="other")
        assert a is b
        assert a is not c

    def test_label_order_does_not_split_instruments(self):
        registry = MetricsRegistry()
        a = registry.counter("frames_total", transport="tcp", wire="binary")
        b = registry.counter("frames_total", wire="binary", transport="tcp")
        assert a is b

    def test_snapshot_renders_sorted_labels(self):
        registry = MetricsRegistry()
        registry.counter("frames_total", wire="binary",
                         transport="tcp").inc(3)
        registry.gauge("depth").set(2.0)
        registry.histogram("push_us", labelled="yes").observe(1.0)
        snap = registry.snapshot()
        assert snap["enabled"] is True
        assert snap["counters"][
            "frames_total{transport=tcp,wire=binary}"] == 3
        assert snap["gauges"]["depth"] == 2.0
        assert snap["histograms"]["push_us{labelled=yes}"]["count"] == 1

    def test_gauge_callback_sampled_at_snapshot_only(self):
        registry = MetricsRegistry()
        calls = []
        registry.gauge_callback("pool_utilization",
                                lambda: calls.append(1) or 0.75)
        assert calls == []  # registration does not sample
        assert registry.snapshot()["gauges"]["pool_utilization"] == 0.75
        assert len(calls) == 1

    def test_gauge_callback_replaced_and_failure_is_none(self):
        registry = MetricsRegistry()
        registry.gauge_callback("depth", lambda: 1)

        def dying():
            raise RuntimeError("sensor gone")

        registry.gauge_callback("depth", dying)  # replaces
        snap = registry.snapshot()
        assert snap["gauges"]["depth"] is None  # must not poison STATUS

    def test_snapshot_is_json_safe(self):
        registry = MetricsRegistry()
        registry.counter("a_total").inc()
        registry.histogram("lat_us").observe(3.0)
        registry.gauge_callback("g", lambda: 1.5)
        json.dumps(registry.snapshot())


class TestDisabledRegistry:
    def test_shared_null_instruments(self):
        registry = MetricsRegistry(enabled=False)
        assert registry.counter("a") is registry.counter("b")
        assert registry.gauge("a") is registry.gauge("b")
        assert registry.histogram("a") is registry.histogram("b")

    def test_null_instruments_swallow_updates(self):
        registry = MetricsRegistry(enabled=False)
        counter = registry.counter("a_total", tenant="t")
        counter.inc(100)
        assert counter.value == 0
        gauge = registry.gauge("g")
        gauge.set(5)
        gauge.inc()
        gauge.dec()
        assert gauge.value == 0.0
        hist = registry.histogram("h")
        hist.observe(1.0)
        assert hist.count == 0

    def test_disabled_snapshot_shape(self):
        registry = MetricsRegistry(enabled=False)
        registry.gauge_callback("never", lambda: 1 / 0)
        assert registry.snapshot() == {"enabled": False}

    def test_null_registry_singleton_is_disabled(self):
        assert NULL_REGISTRY.enabled is False
        assert NULL_REGISTRY.snapshot() == {"enabled": False}
        # Library defaults funnel here; it must stay inert even after
        # other tests have touched it.
        NULL_REGISTRY.counter("anything").inc()
        assert NULL_REGISTRY.snapshot() == {"enabled": False}


class TestPipelineWiring:
    """The registry threaded through real hot paths stays exact."""

    def test_hub_counts_match_ground_truth(self):
        import numpy as np

        from repro import StreamHub, WatermarkParams

        registry = MetricsRegistry()
        hub = StreamHub(metrics=registry, metrics_labels={"tenant": "t9"})
        hub.protect("obs", "1", b"obs-key", params=WatermarkParams(phi=5))
        values = np.linspace(10.0, 40.0, 600)
        out = [hub.push("obs", values[:300]), hub.push("obs", values[300:]),
               hub.finish("obs")]
        released = int(sum(piece.size for piece in out))
        snap = registry.snapshot()
        assert snap["counters"]["hub_pushes_total{tenant=t9}"] == 2
        assert snap["counters"]["hub_items_in_total{tenant=t9}"] == 600
        assert snap["counters"]["hub_items_out_total{tenant=t9}"] \
            == released == 600
        hist = snap["histograms"]["hub_push_us{tenant=t9}"]
        assert hist["count"] == 2
        assert sum(hist["buckets"].values()) == 2

    def test_parallel_detect_pool_counters_exact(self):
        import numpy as np

        from repro.core.embedder import watermark_stream
        from repro.core.params import WatermarkParams
        from repro.core.parallel_detect import (
            DetectionTask,
            merge_results,
            run_tasks,
            split_spans,
        )

        params = WatermarkParams(window_size=64)
        data = np.linspace(10.0, 40.0, 6000)
        marked, _ = watermark_stream(data, "1", b"pool-key", params=params)
        tasks = [DetectionTask(values=marked[start:end], wm_length=1,
                               key=b"pool-key", params=params)
                 for start, end in split_spans(len(marked), 3)]
        registry = MetricsRegistry()
        results = run_tasks(tasks, workers=2, metrics=registry)
        assert len(results) == 3
        merge_results(results, metrics=registry)
        snap = registry.snapshot()
        # Parent-side counters are exact even though the work ran in a
        # process pool (children cannot share the registry).
        assert snap["counters"]["detect_tasks_total"] == 3
        assert snap["counters"]["detect_pool_tasks_total"] == 3
        assert snap["counters"]["detect_pool_batches_total"] == 1
        assert snap["counters"]["detect_span_merges_total"] == 1
        assert snap["counters"]["detect_merged_parts_total"] == 3
        assert snap["gauges"]["detect_pool_workers"] == 2
        assert snap["gauges"]["detect_pool_utilization"] == 1.5
