"""Tests for the Sec-3.2 guarded-bit encoding strategy."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.encoding_initial import InitialEncoding, Vote
from repro.core.params import WatermarkParams
from repro.core.quantize import Quantizer
from repro.errors import ParameterError
from repro.util.hashing import KeyedHasher

PARAMS = WatermarkParams()
QUANTIZER = Quantizer(PARAMS.value_bits, PARAMS.avg_extra_bits)
HASHER = KeyedHasher(b"k1")


def make_subset(center: float = 0.3, size: int = 5) -> list[int]:
    return [QUANTIZER.quantize(center + i * 1e-4) for i in range(size)]


class TestVote:
    def test_decision_true(self):
        assert Vote(n_true=3, n_false=1).decision is True

    def test_decision_false(self):
        assert Vote(n_true=1, n_false=3).decision is False

    def test_tie_abstains(self):
        assert Vote(n_true=2, n_false=2).decision is None


class TestEmbedDetectRoundtrip:
    @pytest.mark.parametrize("bit", [True, False])
    @pytest.mark.parametrize("label", [1, 17, 93, 2**15 + 5])
    def test_roundtrip(self, bit, label):
        encoding = InitialEncoding(PARAMS, QUANTIZER, HASHER)
        subset = make_subset()
        outcome = encoding.embed(subset, 2, label, bit)
        floats = QUANTIZER.dequantize_array(outcome.q_values)
        vote = encoding.detect(np.asarray(floats), 2, label)
        assert vote.decision is bit

    def test_wrong_label_does_not_guarantee_bit(self):
        """Detection with a wrong label reads a different position."""
        encoding = InitialEncoding(PARAMS, QUANTIZER, HASHER)
        results = []
        for label in range(2, 30):
            subset = make_subset()
            outcome = encoding.embed(subset, 2, 1, True)
            floats = QUANTIZER.dequantize_array(outcome.q_values)
            results.append(encoding.detect(np.asarray(floats), 2,
                                           label).decision)
        assert not all(r is True for r in results)

    def test_alterations_confined_to_lsb(self):
        encoding = InitialEncoding(PARAMS, QUANTIZER, HASHER)
        subset = make_subset()
        outcome = encoding.embed(subset, 2, 7, True)
        for old, new in zip(subset, outcome.q_values):
            assert old >> PARAMS.lsb_bits == new >> PARAMS.lsb_bits

    def test_every_member_carries_the_bit(self):
        """Replicating across the subset is what survives sampling."""
        encoding = InitialEncoding(PARAMS, QUANTIZER, HASHER)
        subset = make_subset(size=7)
        outcome = encoding.embed(subset, 3, 11, True)
        for q in outcome.q_values:
            floats = QUANTIZER.dequantize_array([q])
            vote = encoding.detect(np.asarray(floats), 0, 11)
            assert vote.decision is True

    def test_offset_validation(self):
        encoding = InitialEncoding(PARAMS, QUANTIZER, HASHER)
        with pytest.raises(ParameterError):
            encoding.embed(make_subset(), 99, 1, True)
        with pytest.raises(ParameterError):
            encoding.detect(np.asarray([0.1]), 5, 1)


class TestPositionModes:
    def test_value_mode_position_correlates_with_value(self):
        """The original (pre-label) mode: same value => same position.

        This is exactly the correlation the Sec-4.1 attack exploits, and
        the reason `use_label_positions=True` is the default.
        """
        encoding = InitialEncoding(PARAMS, QUANTIZER, HASHER,
                                   use_label_positions=False)
        subset_a = make_subset(0.3)
        subset_b = make_subset(0.3)
        out_a = encoding.embed(subset_a, 2, 5, True)
        out_b = encoding.embed(subset_b, 2, 999, True)  # label ignored
        assert out_a.q_values == out_b.q_values

    def test_label_mode_position_varies_for_same_value(self):
        encoding = InitialEncoding(PARAMS, QUANTIZER, HASHER,
                                   use_label_positions=True)
        outcomes = {tuple(encoding.embed(make_subset(0.3), 2, label,
                                         True).q_values)
                    for label in range(1, 30)}
        assert len(outcomes) > 1
