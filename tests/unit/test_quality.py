"""Tests for the Sec-4.4 quality constraints and undo log."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.quality import (
    Alteration,
    MaxAlteredFraction,
    MaxMeanDrift,
    MaxPerItemChange,
    MaxStdDrift,
    QualityMonitor,
    QualityStats,
)
from repro.errors import ParameterError


def admit_range(monitor: QualityMonitor, n: int = 100) -> None:
    monitor.admit_many(np.linspace(-0.4, 0.4, n))


class TestStats:
    def test_empty_stats_are_zero(self):
        stats = QualityStats()
        assert stats.mean_original() == 0.0
        assert stats.std_marked() == 0.0
        assert stats.altered_fraction() == 0.0

    def test_moments_match_numpy(self):
        monitor = QualityMonitor()
        data = np.linspace(-0.3, 0.5, 64)
        monitor.admit_many(data)
        assert monitor.stats.mean_original() == pytest.approx(np.mean(data))
        assert monitor.stats.std_original() == pytest.approx(np.std(data))

    def test_drift_tracks_alterations(self):
        monitor = QualityMonitor()
        monitor.admit_many([0.0] * 10)
        monitor.propose([Alteration(index=0, old=0.0, new=0.1)])
        assert monitor.stats.mean_drift() == pytest.approx(0.01)


class TestConstraints:
    def test_per_item_change(self):
        constraint = MaxPerItemChange(limit=0.05)
        stats = QualityStats(max_abs_change=0.04)
        assert constraint.check(stats)
        stats.max_abs_change = 0.06
        assert not constraint.check(stats)

    def test_constraint_validation(self):
        for cls in (MaxPerItemChange, MaxMeanDrift, MaxStdDrift):
            with pytest.raises(ParameterError):
                cls(limit=0.0)
        with pytest.raises(ParameterError):
            MaxAlteredFraction(limit=1.5)


class TestMonitor:
    def test_commit_when_constraints_pass(self):
        monitor = QualityMonitor([MaxPerItemChange(limit=0.1)])
        admit_range(monitor)
        ok = monitor.propose([Alteration(index=0, old=0.0, new=0.05)])
        assert ok
        assert monitor.stats.n_altered == 1
        assert monitor.rollbacks == 0

    def test_rollback_on_violation(self):
        monitor = QualityMonitor([MaxPerItemChange(limit=0.01)])
        admit_range(monitor)
        before_mean = monitor.stats.mean_marked()
        ok = monitor.propose([Alteration(index=0, old=0.0, new=0.5)])
        assert not ok
        assert monitor.rollbacks == 1
        assert monitor.undo_log[0].violated == "max-per-item-change"
        # Aggregates restored exactly.
        assert monitor.stats.mean_marked() == pytest.approx(before_mean)
        assert monitor.stats.max_abs_change == 0.0
        assert monitor.stats.n_altered == 0

    def test_mean_drift_constraint_accumulates(self):
        monitor = QualityMonitor([MaxMeanDrift(limit=0.005)])
        monitor.admit_many([0.0] * 100)
        # Each step shifts the mean by 0.002; the third violates.
        accepted = [monitor.propose([Alteration(index=i, old=0.0, new=0.2)])
                    for i in range(3)]
        assert accepted == [True, True, False]

    def test_altered_fraction_constraint(self):
        monitor = QualityMonitor([MaxAlteredFraction(limit=0.02)])
        monitor.admit_many([0.0] * 100)
        first = monitor.propose([Alteration(index=0, old=0.0, new=1e-6),
                                 Alteration(index=1, old=0.0, new=1e-6)])
        second = monitor.propose([Alteration(index=2, old=0.0, new=1e-6)])
        assert first
        assert not second

    def test_empty_proposal_is_noop(self):
        monitor = QualityMonitor([MaxPerItemChange(limit=1e-9)])
        admit_range(monitor)
        assert monitor.propose([])
        assert monitor.rollbacks == 0

    def test_multiple_constraints_first_violation_reported(self):
        monitor = QualityMonitor([MaxMeanDrift(limit=1e-9),
                                  MaxPerItemChange(limit=1e-9)])
        admit_range(monitor)
        monitor.propose([Alteration(index=0, old=0.0, new=0.3)])
        assert monitor.undo_log[0].violated == "max-mean-drift"
