"""Transport layer: TCP framing, RFC 6455 plumbing, hostile inputs.

Mirrors the protocol fuzz suites one layer down: anything a hostile or
broken peer can put on the socket — oversized declared lengths,
reserved bits, masking violations, truncated frames, junk upgrade
requests — must surface as a clean :class:`ProtocolError` (or a clean
``None`` EOF), never as a raw ``struct.error`` or an unbounded buffer.
"""

from __future__ import annotations

import asyncio
import struct

import numpy as np
import pytest

from repro.errors import ProtocolError, ReproError
from repro.server.transports import (
    TcpTransport,
    WebSocketTransport,
    _apply_mask,
    build_transport,
    websocket_accept,
)


def run(coro):
    """Drive one async test scenario with a hang guard."""
    return asyncio.run(asyncio.wait_for(coro, 15))


def ws_frame(opcode: int, payload: bytes = b"", *, fin: bool = True,
             rsv: int = 0, mask: "bytes | None" = None) -> bytes:
    """Hand-rolled RFC 6455 frame so tests control every bit."""
    first = (0x80 if fin else 0) | rsv | opcode
    header = bytearray([first])
    length = len(payload)
    mask_bit = 0x80 if mask is not None else 0
    if length < 126:
        header.append(mask_bit | length)
    elif length < 1 << 16:
        header.append(mask_bit | 126)
        header += struct.pack(">H", length)
    else:
        header.append(mask_bit | 127)
        header += struct.pack(">Q", length)
    if mask is not None:
        header += mask
        payload = _apply_mask(payload, mask)
    return bytes(header) + payload


class TestWebSocketAccept:
    def test_rfc6455_known_vector(self):
        """The worked example from RFC 6455 section 1.3."""
        assert websocket_accept("dGhlIHNhbXBsZSBub25jZQ==") \
            == "s3pPLMBiTxaQ9kYGzzhZRbK+xOo="

    def test_whitespace_tolerated(self):
        assert websocket_accept(" dGhlIHNhbXBsZSBub25jZQ== ") \
            == "s3pPLMBiTxaQ9kYGzzhZRbK+xOo="


class TestApplyMask:
    def test_matches_bytewise_xor(self):
        data, mask = bytes(range(11)), b"\x01\x02\x03\x04"
        expected = bytes(b ^ mask[i % 4] for i, b in enumerate(data))
        assert _apply_mask(data, mask) == expected

    def test_involution(self):
        """Masking twice with the same key is the identity (XOR)."""
        data, mask = b"framed payload bytes", b"\xaa\xbb\xcc\xdd"
        assert _apply_mask(_apply_mask(data, mask), mask) == data

    def test_empty(self):
        assert _apply_mask(b"", b"\x01\x02\x03\x04") == b""

    def test_large_payload(self):
        data = np.arange(10000, dtype=np.uint8).tobytes()
        mask = b"\x10\x20\x30\x40"
        assert _apply_mask(_apply_mask(data, mask), mask) == data


class TestBuildTransport:
    def test_known_names(self):
        assert isinstance(build_transport("tcp"), TcpTransport)
        assert isinstance(build_transport("websocket"), WebSocketTransport)

    def test_unknown_name_raises_clean(self):
        with pytest.raises(ReproError):
            build_transport("carrier-pigeon")


class _EchoServer:
    """A served transport whose handler echoes every message back."""

    def __init__(self, transport, **serve_options):
        self.transport = transport
        self.serve_options = serve_options
        self.errors: "list[Exception]" = []

    async def __aenter__(self):
        async def echo(connection):
            try:
                while True:
                    body = await connection.read_message()
                    if body is None:
                        break
                    await connection.write_message(body)
            except ProtocolError as exc:
                self.errors.append(exc)
            finally:
                await connection.close()

        self.listener = await self.transport.serve(
            "127.0.0.1", 0, echo, **self.serve_options)
        return self

    async def __aexit__(self, *exc_info):
        self.listener.close()
        await self.listener.wait_closed()

    @property
    def address(self):
        return self.listener.address


class TestTcpChannel:
    @pytest.mark.parametrize("payload", [b"", b"x", b"A" * 70000],
                             ids=["empty", "tiny", "large"])
    def test_round_trip(self, payload):
        async def scenario():
            transport = TcpTransport()
            async with _EchoServer(transport) as server:
                host, port = server.address
                connection = await transport.connect(host, port)
                await connection.write_message(payload)
                echoed = await connection.read_message()
                await connection.close()
                return echoed

        assert run(scenario()) == payload

    def test_write_messages_batches_in_order(self):
        bodies = [b"one", b"two", b"three"]

        async def scenario():
            transport = TcpTransport()
            async with _EchoServer(transport) as server:
                host, port = server.address
                connection = await transport.connect(host, port)
                await connection.write_messages(bodies)
                echoed = [await connection.read_message()
                          for _ in bodies]
                await connection.close()
                return echoed

        assert run(scenario()) == bodies

    def test_clean_eof_is_none(self):
        async def scenario():
            async def hang_up(reader, writer):
                writer.close()

            server = await asyncio.start_server(hang_up, "127.0.0.1", 0)
            host, port = server.sockets[0].getsockname()[:2]
            connection = await TcpTransport().connect(host, port)
            try:
                return await connection.read_message()
            finally:
                await connection.close()
                server.close()
                await server.wait_closed()

        assert run(scenario()) is None

    def test_hostile_length_prefix_rejected_before_buffering(self):
        async def scenario():
            async def hostile(reader, writer):
                writer.write(struct.pack(">I", 2 ** 31) + b"xx")
                await writer.drain()

            server = await asyncio.start_server(hostile, "127.0.0.1", 0)
            host, port = server.sockets[0].getsockname()[:2]
            connection = await TcpTransport().connect(host, port,
                                                      max_bytes=1 << 20)
            try:
                with pytest.raises(ProtocolError, match="length prefix"):
                    await connection.read_message()
            finally:
                await connection.close()
                server.close()
                await server.wait_closed()

        run(scenario())

    def test_eof_mid_frame_rejected(self):
        async def scenario():
            async def truncating(reader, writer):
                writer.write(struct.pack(">I", 100) + b"only-some")
                await writer.drain()
                writer.close()

            server = await asyncio.start_server(truncating,
                                                "127.0.0.1", 0)
            host, port = server.sockets[0].getsockname()[:2]
            connection = await TcpTransport().connect(host, port)
            try:
                with pytest.raises(ProtocolError, match="mid-frame"):
                    await connection.read_message()
            finally:
                await connection.close()
                server.close()
                await server.wait_closed()

        run(scenario())


async def _ws_scripted_server(*payloads: bytes):
    """A raw TCP server that completes the upgrade then replays
    ``payloads`` verbatim — hostile-server scenarios for the client."""
    async def serve(reader, writer):
        await WebSocketTransport._server_handshake(reader, writer)
        for payload in payloads:
            writer.write(payload)
        await writer.drain()
        writer.close()

    server = await asyncio.start_server(serve, "127.0.0.1", 0)
    return server, server.sockets[0].getsockname()[:2]


async def _ws_client_reads(server_bytes, max_bytes=1 << 20):
    """Connect a real WebSocket client to a scripted server; return
    what read_message yields (or raise what it raises)."""
    server, (host, port) = await _ws_scripted_server(*server_bytes)
    connection = await WebSocketTransport().connect(host, port,
                                                    max_bytes=max_bytes)
    try:
        return await connection.read_message()
    finally:
        connection.abort()
        server.close()
        await server.wait_closed()


class TestWebSocketChannel:
    @pytest.mark.parametrize("payload", [b"", b"x", b"B" * 70000],
                             ids=["empty", "tiny", "large"])
    def test_round_trip(self, payload):
        async def scenario():
            transport = WebSocketTransport()
            async with _EchoServer(transport) as server:
                host, port = server.address
                connection = await transport.connect(host, port)
                await connection.write_message(payload)
                echoed = await connection.read_message()
                await connection.close()
                return echoed

        assert run(scenario()) == payload

    def test_write_messages_batches_in_order(self):
        bodies = [b"alpha", b"beta", b"gamma"]

        async def scenario():
            transport = WebSocketTransport()
            async with _EchoServer(transport) as server:
                host, port = server.address
                connection = await transport.connect(host, port)
                await connection.write_messages(bodies)
                echoed = [await connection.read_message()
                          for _ in bodies]
                await connection.close()
                return echoed

        assert run(scenario()) == bodies

    def test_fragmented_message_reassembled(self):
        frames = [ws_frame(0x2, b"spread ", fin=False),
                  ws_frame(0x0, b"across ", fin=False),
                  ws_frame(0x0, b"frames", fin=True)]
        assert run(_ws_client_reads(frames)) == b"spread across frames"

    def test_ping_answered_between_fragments(self):
        frames = [ws_frame(0x2, b"sur", fin=False),
                  ws_frame(0x9, b"ping!"),
                  ws_frame(0x0, b"vives", fin=True)]
        assert run(_ws_client_reads(frames)) == b"survives"

    def test_close_yields_none(self):
        assert run(_ws_client_reads([ws_frame(0x8)])) is None

    def test_clean_eof_yields_none(self):
        assert run(_ws_client_reads([])) is None

    def test_reserved_bits_rejected(self):
        with pytest.raises(ProtocolError, match="reserved bits"):
            run(_ws_client_reads([ws_frame(0x2, b"x", rsv=0x40)]))

    def test_text_message_rejected(self):
        with pytest.raises(ProtocolError, match="text"):
            run(_ws_client_reads([ws_frame(0x1, b"hi")]))

    def test_unknown_opcode_rejected(self):
        with pytest.raises(ProtocolError, match="opcode"):
            run(_ws_client_reads([ws_frame(0x3, b"x")]))

    def test_continuation_without_message_rejected(self):
        with pytest.raises(ProtocolError, match="continuation"):
            run(_ws_client_reads([ws_frame(0x0, b"x")]))

    def test_new_message_inside_fragmented_one_rejected(self):
        frames = [ws_frame(0x2, b"a", fin=False), ws_frame(0x2, b"b")]
        with pytest.raises(ProtocolError, match="inside"):
            run(_ws_client_reads(frames))

    def test_masked_server_frame_rejected(self):
        """Masking asymmetry: server frames must arrive unmasked."""
        frames = [ws_frame(0x2, b"x", mask=b"\x01\x02\x03\x04")]
        with pytest.raises(ProtocolError, match="masking"):
            run(_ws_client_reads(frames))

    def test_hostile_declared_length_rejected_before_buffering(self):
        """A 2**60-byte declared length dies on the header, without the
        payload ever being read or buffered."""
        hostile = bytes([0x82, 127]) + struct.pack(">Q", 1 << 60)
        with pytest.raises(ProtocolError, match="hostile length"):
            run(_ws_client_reads([hostile], max_bytes=1 << 20))

    def test_oversized_fragment_total_rejected(self):
        """Fragments individually under the cap must not buffer past it."""
        frames = [ws_frame(0x2, b"a" * 600, fin=False),
                  ws_frame(0x0, b"b" * 600, fin=True)]
        with pytest.raises(ProtocolError, match="exceeds"):
            run(_ws_client_reads(frames, max_bytes=1000))

    def test_unmasked_client_frame_rejected_by_server(self):
        """The server rejects unmasked client frames (RFC 6455 §5.1)."""
        async def scenario():
            transport = WebSocketTransport()
            async with _EchoServer(transport) as server:
                host, port = server.address
                reader, writer = await asyncio.open_connection(host, port)
                writer.write(
                    f"GET / HTTP/1.1\r\nHost: {host}\r\n"
                    f"Upgrade: websocket\r\nConnection: Upgrade\r\n"
                    f"Sec-WebSocket-Key: dGhlIHNhbXBsZSBub25jZQ==\r\n"
                    f"\r\n".encode())
                await writer.drain()
                await reader.readuntil(b"\r\n\r\n")
                writer.write(ws_frame(0x2, b"unmasked!"))
                await writer.drain()
                # The server hangs up (at most a CLOSE frame first).
                assert await reader.read() in (b"", ws_frame(0x8))
                writer.close()
            return server.errors

        errors = run(scenario())
        assert len(errors) == 1
        assert "masking" in str(errors[0])

    def test_non_upgrade_request_gets_400(self):
        async def scenario():
            transport = WebSocketTransport()
            async with _EchoServer(transport) as server:
                host, port = server.address
                reader, writer = await asyncio.open_connection(host, port)
                writer.write(b"POST /nope HTTP/1.1\r\nHost: x\r\n\r\n")
                await writer.drain()
                status = await reader.readline()
                writer.close()
                return status

        assert b"400" in run(scenario())

    def test_client_rejects_refused_upgrade(self):
        async def scenario():
            async def refuse(reader, writer):
                await reader.readuntil(b"\r\n\r\n")
                writer.write(b"HTTP/1.1 200 OK\r\n"
                             b"Content-Length: 0\r\n\r\n")
                await writer.drain()

            server = await asyncio.start_server(refuse, "127.0.0.1", 0)
            host, port = server.sockets[0].getsockname()[:2]
            try:
                with pytest.raises(ProtocolError, match="refused"):
                    await WebSocketTransport().connect(host, port)
            finally:
                server.close()
                await server.wait_closed()

        run(scenario())

    def test_client_rejects_bad_accept_value(self):
        async def scenario():
            async def lie(reader, writer):
                await reader.readuntil(b"\r\n\r\n")
                writer.write(b"HTTP/1.1 101 Switching Protocols\r\n"
                             b"Upgrade: websocket\r\n"
                             b"Sec-WebSocket-Accept: bm9wZQ==\r\n\r\n")
                await writer.drain()

            server = await asyncio.start_server(lie, "127.0.0.1", 0)
            host, port = server.sockets[0].getsockname()[:2]
            try:
                with pytest.raises(ProtocolError, match="Accept"):
                    await WebSocketTransport().connect(host, port)
            finally:
                server.close()
                await server.wait_closed()

        run(scenario())

    def test_oversized_upgrade_request_rejected(self):
        """A never-ending header block cannot buffer unboundedly."""
        async def scenario():
            async def flood(reader, writer):
                await reader.readuntil(b"\r\n\r\n")
                writer.write(b"HTTP/1.1 101 Switching Protocols\r\n")
                writer.write(b"X-Filler: " + b"a" * (32 * 1024) + b"\r\n")
                await writer.drain()

            server = await asyncio.start_server(flood, "127.0.0.1", 0)
            host, port = server.sockets[0].getsockname()[:2]
            try:
                with pytest.raises(ProtocolError, match="exceeds"):
                    await WebSocketTransport().connect(host, port)
            finally:
                server.close()
                await server.wait_closed()

        run(scenario())
