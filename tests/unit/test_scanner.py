"""Tests for the shared streaming scanner internals."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.params import WatermarkParams
from repro.core.quantize import Quantizer
from repro.core.scanner import ScanCounters, StreamScanner
from repro.errors import ParameterError
from repro.streams.generators import TemperatureSensorGenerator
from repro.util.hashing import KeyedHasher


class RecordingScanner(StreamScanner):
    """Test double: records every selected extreme, mutates nothing."""

    def __init__(self, params: WatermarkParams, wm_length: int = 1,
                 **kwargs) -> None:
        quantizer = Quantizer(params.value_bits, params.avg_extra_bits)
        super().__init__(params, quantizer, KeyedHasher(b"scan-key"),
                         wm_length, **kwargs)
        self.selected: list[tuple[int, int, int]] = []

    def _handle_selected(self, extreme, window_values, local, start, end,
                         label, bit_index):
        self.selected.append((extreme.index, bit_index, label))
        return self._reference_value(extreme, window_values, start, end)


@pytest.fixture(scope="module")
def stream():
    return TemperatureSensorGenerator(eta=80, seed=44).generate(6000)


class TestCounters:
    def test_eta_estimate(self):
        counters = ScanCounters(items=1000, majors=10)
        assert counters.eta_estimate == 100.0

    def test_eta_estimate_no_majors(self):
        assert ScanCounters(items=100).eta_estimate == float("inf")

    def test_average_subset_size(self):
        counters = ScanCounters(extremes_confirmed=4, subset_size_sum=40)
        assert counters.average_subset_size == 10.0

    def test_from_dict_defaults_missing_fields_to_zero(self):
        """Checkpoints written before a counter existed still restore."""
        restored = ScanCounters.from_dict({"items": 10, "majors": 2})
        assert restored.items == 10
        assert restored.majors == 2
        assert restored.selected == 0
        assert restored.missed_evictions == 0

    def test_from_dict_ignores_unknown_fields(self):
        restored = ScanCounters.from_dict(
            {"items": 3, "retired_counter": 99})
        assert restored.items == 3
        assert not hasattr(restored, "retired_counter")

    def test_round_trip(self):
        counters = ScanCounters(items=7, extremes_confirmed=3, majors=2,
                                selected=1, subset_size_sum=12)
        assert ScanCounters.from_dict(counters.to_dict()) == counters


class TestScannerBehaviour:
    def test_passthrough_preserves_values(self, stream):
        scanner = RecordingScanner(WatermarkParams())
        out = scanner.run(stream)
        assert np.array_equal(out, stream)

    def test_counters_populated(self, stream):
        scanner = RecordingScanner(WatermarkParams())
        scanner.run(stream)
        c = scanner.counters
        assert c.items == len(stream)
        assert 0 < c.majors <= c.extremes_confirmed
        assert c.selected == len(scanner.selected)

    def test_selection_fraction_tracks_phi(self, stream):
        counts = []
        for phi in (2, 6):
            scanner = RecordingScanner(WatermarkParams().with_updates(
                phi=phi))
            scanner.run(stream)
            counts.append(len(scanner.selected))
        # phi=6 selects roughly a third as many carriers as phi=2.
        assert counts[1] < counts[0]

    def test_selected_indices_are_increasing(self, stream):
        scanner = RecordingScanner(WatermarkParams())
        scanner.run(stream)
        indices = [i for i, _, _ in scanner.selected]
        assert indices == sorted(indices)

    def test_labels_present_for_all_selected(self, stream):
        scanner = RecordingScanner(WatermarkParams())
        scanner.run(stream)
        assert all(label >= 1 for _, _, label in scanner.selected)
        # With require_labels, labels carry the full lambda bit-length.
        lam = WatermarkParams().lambda_bits
        assert all(label.bit_length() == lam
                   for _, _, label in scanner.selected)

    def test_require_labels_false_uses_sentinel(self, stream):
        scanner = RecordingScanner(WatermarkParams(), require_labels=False)
        scanner.run(stream)
        # Early extremes (before warm-up) carry the sentinel label 1.
        assert any(label == 1 for _, _, label in scanner.selected)

    def test_invalid_chunk_size(self, stream):
        scanner = RecordingScanner(WatermarkParams())
        with pytest.raises(ParameterError):
            scanner.run(stream, chunk_size=0)

    def test_effective_sigma_validation(self):
        with pytest.raises(ParameterError):
            RecordingScanner(WatermarkParams(), effective_sigma=0)

    def test_base_handle_selected_is_abstract(self, stream):
        params = WatermarkParams()
        quantizer = Quantizer(params.value_bits, params.avg_extra_bits)
        scanner = StreamScanner(params, quantizer, KeyedHasher(b"k"), 1)
        with pytest.raises(NotImplementedError):
            scanner.run(stream[:2000])


class TestRobustReference:
    def test_reference_is_subset_mean_when_enabled(self, stream):
        params = WatermarkParams(robust_extreme_value=True)
        scanner = RecordingScanner(params)
        values = np.asarray([0.0, 0.30, 0.31, 0.32, 0.31, 0.30, 0.0])
        ref = scanner._reference_value(
            extreme=None, window_values=values, start=1, end=5)
        assert ref == pytest.approx(np.mean(values[1:6]))

    def test_reference_is_raw_value_when_disabled(self, stream):
        from repro.core.extremes import MAXIMUM, Extreme

        params = WatermarkParams(robust_extreme_value=False)
        scanner = RecordingScanner(params)
        extreme = Extreme(index=3, value=0.32, kind=MAXIMUM,
                          subset_start=1, subset_end=5)
        values = np.asarray([0.0, 0.30, 0.31, 0.32, 0.31, 0.30, 0.0])
        ref = scanner._reference_value(extreme, values, 1, 5)
        assert ref == 0.32
