"""Unit and property tests for repro.util.bitops."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ParameterError
from repro.util import bitops


class TestBitLength:
    def test_zero_occupies_one_bit(self):
        assert bitops.bit_length(0) == 1

    def test_matches_python_for_positive(self):
        assert bitops.bit_length(255) == 8
        assert bitops.bit_length(256) == 9

    def test_negative_rejected(self):
        with pytest.raises(ParameterError):
            bitops.bit_length(-1)


class TestMsbLsb:
    def test_msb_extracts_top_bits(self):
        assert bitops.msb(0b1011_0000, 4, 8) == 0b1011

    def test_msb_left_pads_small_values(self):
        # b(x) < width: the value is implicitly left-padded with zeroes.
        assert bitops.msb(0b0000_0001, 4, 8) == 0

    def test_msb_full_width_is_identity(self):
        assert bitops.msb(123, 8, 8) == 123
        assert bitops.msb(123, 12, 8) == 123

    def test_lsb_extracts_low_bits(self):
        assert bitops.lsb(0b1011_0110, 4) == 0b0110

    def test_msb_rejects_oversized_value(self):
        with pytest.raises(ParameterError):
            bitops.msb(256, 4, 8)

    def test_rejects_nonpositive_counts(self):
        with pytest.raises(ParameterError):
            bitops.msb(1, 0, 8)
        with pytest.raises(ParameterError):
            bitops.lsb(1, 0)

    @given(st.integers(0, 2**32 - 1), st.integers(1, 31))
    def test_msb_lsb_partition_value(self, x, b):
        """msb and lsb together reconstruct the original word."""
        width = 32
        high = bitops.msb(x, width - b, width)
        low = bitops.lsb(x, b)
        assert (high << b) | low == x

    @given(st.integers(0, 2**32 - 1), st.integers(1, 32))
    def test_lsb_idempotent(self, x, b):
        assert bitops.lsb(bitops.lsb(x, b), b) == bitops.lsb(x, b)


class TestBitManipulation:
    def test_set_clear_get(self):
        x = 0
        x = bitops.set_bit(x, 3)
        assert bitops.get_bit(x, 3) == 1
        x = bitops.clear_bit(x, 3)
        assert bitops.get_bit(x, 3) == 0

    @given(st.integers(0, 2**32 - 1), st.integers(0, 31),
           st.booleans())
    def test_with_bit_roundtrip(self, x, pos, value):
        assert bitops.get_bit(bitops.with_bit(x, pos, value), pos) == int(value)

    @given(st.integers(0, 2**32 - 1), st.integers(0, 31),
           st.booleans())
    def test_with_bit_leaves_other_bits(self, x, pos, value):
        y = bitops.with_bit(x, pos, value)
        mask = ~(1 << pos)
        assert y & mask == x & mask


class TestGuardedBit:
    def test_writes_payload_and_zeroes_guards(self):
        x = 0b1111_1111
        y = bitops.apply_guarded_bit(x, 3, True)
        assert bitops.get_bit(y, 2) == 0
        assert bitops.get_bit(y, 3) == 1
        assert bitops.get_bit(y, 4) == 0

    def test_false_payload(self):
        y = bitops.apply_guarded_bit(0b1111_1111, 3, False)
        assert bitops.get_bit(y, 3) == 0

    def test_position_zero_rejected(self):
        # No room for the low guard bit.
        with pytest.raises(ParameterError):
            bitops.apply_guarded_bit(0, 0, True)

    @given(st.integers(0, 2**32 - 1), st.integers(1, 29), st.booleans())
    def test_read_recovers_written_bit(self, x, pos, bit):
        y = bitops.apply_guarded_bit(x, pos, bit)
        assert bitops.read_guarded_bit(y, pos) == int(bit)

    @given(st.integers(0, 2**20 - 1), st.integers(0, 2**20 - 1),
           st.integers(2, 17), st.booleans())
    def test_guard_bits_protect_pairwise_average(self, low_a, low_b, pos, bit):
        """The initial encoding's summarization claim, two-item case.

        Two values sharing everything above the low guard, both carrying
        the same guarded payload, must preserve the payload under integer
        averaging: the zeroed guard absorbs the carry from the low bits.
        """
        high = 0b1010 << 21
        a = bitops.apply_guarded_bit(high | bitops.lsb(low_a, pos - 1),
                                     pos, bit)
        b = bitops.apply_guarded_bit(high | bitops.lsb(low_b, pos - 1),
                                     pos, bit)
        average = (a + b) // 2
        assert bitops.read_guarded_bit(average, pos) == int(bit)


class TestReplaceLsb:
    @given(st.integers(0, 2**32 - 1), st.integers(0, 2**12 - 1))
    def test_replaces_low_preserves_high(self, x, new_low):
        y = bitops.replace_lsb(x, new_low, 12)
        assert bitops.lsb(y, 12) == new_low
        assert y >> 12 == x >> 12

    def test_rejects_oversized_replacement(self):
        with pytest.raises(ParameterError):
            bitops.replace_lsb(0, 16, 4)


class TestBitListConversions:
    def test_bits_to_int_from_string(self):
        # The label of extreme K in paper Fig 2(a).
        assert bitops.bits_to_int("110100") == 0b110100

    def test_bits_to_int_from_list(self):
        assert bitops.bits_to_int([1, 0, 1]) == 5

    def test_rejects_non_bits(self):
        with pytest.raises(ParameterError):
            bitops.bits_to_int("102")

    @given(st.integers(0, 2**16 - 1))
    def test_int_bits_roundtrip(self, x):
        assert bitops.bits_to_int(bitops.int_to_bits(x, 16)) == x
