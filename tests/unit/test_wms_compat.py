"""Tests for the wms paper-notation compatibility layer."""

from __future__ import annotations

import numpy as np

from repro import wms
from repro.core.params import WatermarkParams


class TestPaperParams:
    def test_symbol_mapping(self):
        params = wms.paper_params(sigma=4, delta=0.01, phi=3, lam=10,
                                  skip=1, omega=2, alpha=14, beta=6,
                                  window=512, kappa=2)
        assert params.sigma == 4
        assert params.delta == 0.01
        assert params.phi == 3
        assert params.lambda_bits == 10
        assert params.skip == 1
        assert params.omega == 2
        assert params.lsb_bits == 14
        assert params.msb_bits == 6
        assert params.window_size == 512
        assert params.vote_threshold == 2

    def test_defaults_match_library(self):
        assert wms.paper_params() == WatermarkParams()


class TestPaperWorkflow:
    def test_fig3_fig4_workflow(self):
        stream = wms.synthetic_stream(eta=80, n_items=6000, seed=3)
        marked = wms.wm_embed(stream, wm="1", k1=b"wms-key")
        assert marked.shape == stream.shape
        buckets_t, buckets_f = wms.wm_detect(marked, b_wm=1, k1=b"wms-key")
        assert len(buckets_t) == len(buckets_f) == 1
        assert buckets_t[0] - buckets_f[0] > 10
        assert wms.wm_construct(buckets_t, buckets_f, kappa=0) == [True]

    def test_wm_construct_undefined_on_balanced_buckets(self):
        assert wms.wm_construct([5], [5], kappa=0) == [None]
        assert wms.wm_construct([7, 1], [1, 7], kappa=2) == [True, False]
        assert wms.wm_construct([6], [5], kappa=3) == [None]

    def test_detect_with_rho(self):
        from repro.transforms.summarization import summarize

        stream = wms.synthetic_stream(eta=80, n_items=6000, seed=3)
        marked = wms.wm_embed(stream, wm="1", k1=b"wms-key")
        buckets_t, buckets_f = wms.wm_detect(summarize(marked, 3),
                                             b_wm=1, k1=b"wms-key",
                                             rho=3.0)
        assert buckets_t[0] - buckets_f[0] > 5
