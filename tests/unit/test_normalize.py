"""Tests for normalization — including the A4 linear-attack invariance."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import NormalizationError
from repro.streams.normalize import Normalizer
from repro.transforms.linear import linear_transform


class TestConstruction:
    def test_degenerate_range_rejected(self):
        with pytest.raises(NormalizationError):
            Normalizer(low=1.0, high=1.0)

    def test_nonfinite_rejected(self):
        with pytest.raises(NormalizationError):
            Normalizer(low=float("nan"), high=1.0)

    def test_bad_margin_rejected(self):
        with pytest.raises(NormalizationError):
            Normalizer(low=0.0, high=1.0, margin=0.0)

    def test_fit_constant_rejected(self):
        with pytest.raises(NormalizationError):
            Normalizer.fit([2.0, 2.0, 2.0])


class TestMapping:
    def test_output_strictly_inside_interval(self):
        n = Normalizer(low=0.0, high=35.0)
        out = n.normalize(np.linspace(0.0, 35.0, 1001))
        assert out.min() > -0.5
        assert out.max() < 0.5

    def test_clipping_outside_fitted_range(self):
        n = Normalizer(low=0.0, high=10.0)
        out = n.normalize([-5.0, 15.0])
        assert out[0] == pytest.approx(-0.49, abs=1e-9)
        assert out[1] == pytest.approx(0.49, abs=1e-9)

    @given(st.floats(0.1, 30.0))
    def test_scalar_roundtrip(self, v):
        n = Normalizer(low=0.0, high=35.0)
        assert n.denormalize_scalar(n.normalize_scalar(v)) == pytest.approx(v)

    def test_array_roundtrip(self):
        n = Normalizer(low=-3.0, high=7.0)
        values = np.linspace(-3.0, 7.0, 313)
        assert np.allclose(n.denormalize(n.normalize(values)), values)


class TestLinearAttackInvariance:
    """Re-normalization defeats A4 (paper footnote 1)."""

    @given(st.floats(0.2, 10.0), st.floats(-50.0, 50.0))
    def test_positive_scaling_invariant(self, scale, offset):
        rng = np.random.default_rng(42)
        data = rng.uniform(1.0, 30.0, size=500)
        attacked = linear_transform(data, scale=scale, offset=offset)
        original_form = Normalizer.fit(data).normalize(data)
        attacked_form = Normalizer.fit(attacked).normalize(attacked)
        assert np.allclose(original_form, attacked_form, atol=1e-9)

    def test_negative_scaling_not_invariant(self):
        """Documented limitation: sign flips swap minima and maxima."""
        rng = np.random.default_rng(42)
        data = rng.uniform(1.0, 30.0, size=500)
        attacked = linear_transform(data, scale=-1.0)
        original_form = Normalizer.fit(data).normalize(data)
        attacked_form = Normalizer.fit(attacked).normalize(attacked)
        assert not np.allclose(original_form, attacked_form, atol=1e-3)
