"""Tests for multi-layer watermarks (the Sec-4 improvement)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.multilayer import (
    default_layers,
    detect_multilayer,
    watermark_multilayer,
)
from repro.core.params import WatermarkParams
from repro.errors import ParameterError
from repro.streams.generators import TemperatureSensorGenerator

KEY = b"multilayer-key"


@pytest.fixture(scope="module")
def layered_stream():
    """A stream with structure at two scales: coarse arcs + fine ripples."""
    coarse = TemperatureSensorGenerator(eta=400, seed=5,
                                        extreme_scale=0.3).generate(12000)
    fine = TemperatureSensorGenerator(eta=60, seed=6,
                                      extreme_scale=0.05,
                                      min_swing=0.02).generate(12000)
    return np.clip(coarse * 0.7 + fine * 0.5, -0.49, 0.49)


class TestLayerConstruction:
    def test_default_layers_ordered(self):
        layers = default_layers()
        assert len(layers) == 2
        assert layers[1].prominence < layers[0].prominence
        assert layers[1].delta < layers[0].delta

    def test_fine_factor_validation(self):
        with pytest.raises(ParameterError):
            default_layers(fine_factor=1.5)

    def test_single_layer_rejected(self):
        with pytest.raises(ParameterError):
            watermark_multilayer([0.1] * 100, "1", KEY,
                                 layers=[WatermarkParams()])

    def test_wrong_order_rejected(self):
        base = WatermarkParams()
        fine = base.with_updates(prominence=0.01, delta=0.005)
        with pytest.raises(ParameterError):
            watermark_multilayer([0.1] * 100, "1", KEY,
                                 layers=[fine, base])


class TestRoundtrip:
    def test_both_layers_embed(self, layered_stream):
        marked, reports = watermark_multilayer(layered_stream, "1", KEY)
        assert len(reports) == 2
        assert all(r.embedded > 0 for r in reports)
        # Low-bit alterations only.
        assert np.max(np.abs(marked - layered_stream)) <= 2.0 ** -16

    def test_combined_detection_exceeds_single_layer(self, layered_stream):
        layers = default_layers()
        marked, _ = watermark_multilayer(layered_stream, "1", KEY,
                                         layers=layers)
        combined = detect_multilayer(marked, 1, KEY, layers=layers)
        from repro.core.detector import detect_watermark
        from repro.core.multilayer import _layer_key

        singles = [detect_watermark(marked, 1, _layer_key(KEY, d),
                                    params=params).bias(0)
                   for d, params in enumerate(layers)]
        assert combined.bias(0) == sum(singles)
        assert combined.bias(0) > max(singles)

    def test_coarse_layer_survives_deep_summarization(self, layered_stream):
        """The design goal: deep summarization flattens the fine layer,
        the coarse layer keeps testifying."""
        from repro.transforms.summarization import summarize

        layers = default_layers()
        marked, _ = watermark_multilayer(layered_stream, "1", KEY,
                                         layers=layers)
        deep = summarize(marked, 5)
        combined = detect_multilayer(deep, 1, KEY, layers=layers,
                                     transform_degree=5.0)
        assert combined.bias(0) >= 5

    def test_unwatermarked_combined_stays_null(self, layered_stream):
        combined = detect_multilayer(layered_stream, 1, KEY)
        assert abs(combined.bias(0)) <= 20
        assert combined.exact_false_positive(0) > 1e-5
