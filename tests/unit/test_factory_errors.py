"""Tests for the encoding factory and the exception hierarchy."""

from __future__ import annotations

import pytest

from repro.core.encoding_factory import ENCODING_NAMES, build_encoding
from repro.core.encoding_initial import InitialEncoding, Vote
from repro.core.encoding_multihash import MultihashEncoding
from repro.core.encoding_quadres import QuadResEncoding
from repro.core.params import WatermarkParams
from repro.core.quantize import Quantizer
from repro.errors import (
    DetectionError,
    EncodingError,
    EncodingSearchExhausted,
    KeyError_,
    NormalizationError,
    ParameterError,
    QualityConstraintViolated,
    ReproError,
    StreamError,
    WindowOverflowError,
)
from repro.util.hashing import KeyedHasher

PARAMS = WatermarkParams()
QUANTIZER = Quantizer(PARAMS.value_bits, PARAMS.avg_extra_bits)
HASHER = KeyedHasher(b"factory-key")


class TestFactory:
    @pytest.mark.parametrize("name,cls", [
        ("multihash", MultihashEncoding),
        ("initial", InitialEncoding),
        ("quadres", QuadResEncoding),
    ])
    def test_builds_each_named_encoding(self, name, cls):
        assert name in ENCODING_NAMES
        encoding = build_encoding(name, PARAMS, QUANTIZER, HASHER)
        assert isinstance(encoding, cls)

    def test_forwards_options(self):
        encoding = build_encoding("multihash", PARAMS, QUANTIZER, HASHER,
                                  method="random")
        assert encoding._method == "random"

    def test_passes_through_strategy_objects(self):
        strategy = InitialEncoding(PARAMS, QUANTIZER, HASHER)
        assert build_encoding(strategy, PARAMS, QUANTIZER, HASHER) \
            is strategy

    def test_rejects_unknown_name(self):
        with pytest.raises(ParameterError):
            build_encoding("rot13", PARAMS, QUANTIZER, HASHER)

    def test_rejects_non_strategy_object(self):
        with pytest.raises(ParameterError):
            build_encoding(object(), PARAMS, QUANTIZER, HASHER)


class TestExceptionHierarchy:
    @pytest.mark.parametrize("exc", [
        ParameterError, StreamError, WindowOverflowError,
        NormalizationError, EncodingError, EncodingSearchExhausted,
        DetectionError, KeyError_,
    ])
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, ReproError)

    def test_value_errors_catchable_as_such(self):
        assert issubclass(ParameterError, ValueError)
        assert issubclass(NormalizationError, ValueError)
        assert issubclass(KeyError_, ValueError)

    def test_window_overflow_is_stream_error(self):
        assert issubclass(WindowOverflowError, StreamError)

    def test_search_exhausted_is_encoding_error(self):
        assert issubclass(EncodingSearchExhausted, EncodingError)

    def test_quality_violation_carries_constraint_name(self):
        exc = QualityConstraintViolated("max-mean-drift")
        assert exc.constraint_name == "max-mean-drift"
        assert "max-mean-drift" in str(exc)

    def test_quality_violation_custom_message(self):
        exc = QualityConstraintViolated("x", "custom text")
        assert str(exc) == "custom text"


class TestVoteSemantics:
    def test_vote_is_frozen(self):
        vote = Vote(n_true=1, n_false=0)
        with pytest.raises(AttributeError):
            vote.n_true = 5  # type: ignore[misc]
