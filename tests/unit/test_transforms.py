"""Tests for the A1–A4 domain transforms."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ParameterError
from repro.transforms.compose import Compose, describe_pipeline
from repro.transforms.linear import linear_transform
from repro.transforms.sampling import fixed_random_sampling, uniform_random_sampling
from repro.transforms.segmentation import random_segment, segment
from repro.transforms.summarization import summarize

stream_strategy = st.lists(st.floats(-0.49, 0.49, allow_nan=False),
                           min_size=20, max_size=400).map(np.asarray)


class TestSampling:
    @given(stream_strategy, st.integers(1, 10), st.integers(0, 2**31))
    @settings(max_examples=50)
    def test_output_length(self, values, degree, seed):
        out = uniform_random_sampling(values, degree, rng=seed)
        n_full = len(values) // degree
        remainder = len(values) - n_full * degree
        assert len(out) == n_full + (1 if remainder else 0)

    @given(stream_strategy, st.integers(1, 10), st.integers(0, 2**31))
    @settings(max_examples=50)
    def test_samples_come_from_their_chunks(self, values, degree, seed):
        out = uniform_random_sampling(values, degree, rng=seed)
        n_full = len(values) // degree
        for k in range(n_full):
            chunk = values[k * degree:(k + 1) * degree]
            assert out[k] in chunk

    def test_order_preserved_on_monotone_stream(self):
        values = np.linspace(-0.4, 0.4, 100)
        out = uniform_random_sampling(values, 5, rng=1)
        assert np.all(np.diff(out) > 0)

    def test_fixed_sampling_deterministic(self):
        values = np.arange(20, dtype=float) / 100
        out = fixed_random_sampling(values, 4)
        assert np.array_equal(out, values[::4])

    def test_degree_one_is_identity_copy(self):
        values = np.linspace(-0.4, 0.4, 10)
        out = uniform_random_sampling(values, 1, rng=0)
        assert np.array_equal(out, values)
        out[0] = 99.0
        assert values[0] != 99.0  # a copy, not a view

    def test_degree_validation(self):
        with pytest.raises(ParameterError):
            uniform_random_sampling([0.1, 0.2], 0)
        with pytest.raises(ParameterError):
            uniform_random_sampling([0.1, 0.2], 3)


class TestSummarization:
    def test_paper_definition_mean_of_chunks(self):
        out = summarize([1.0, 2.0, 3.0, 4.0, 5.0, 6.0], 2)
        assert out.tolist() == [1.5, 3.5, 5.5]

    def test_partial_chunk_kept_by_default(self):
        out = summarize([1.0, 2.0, 3.0], 2)
        assert out.tolist() == [1.5, 3.0]

    def test_partial_chunk_dropped_on_request(self):
        out = summarize([1.0, 2.0, 3.0], 2, keep_partial=False)
        assert out.tolist() == [1.5]

    @given(stream_strategy, st.integers(1, 8))
    @settings(max_examples=50)
    def test_mean_preserved(self, values, degree):
        """Full-chunk summarization preserves the chunked mean exactly."""
        n_full = len(values) // degree
        if n_full == 0:
            return
        body = values[:n_full * degree]
        out = summarize(body, degree)
        assert np.mean(out) == pytest.approx(np.mean(body), abs=1e-12)

    @pytest.mark.parametrize("aggregate", ["min", "max", "median"])
    def test_future_work_aggregates(self, aggregate):
        values = [1.0, 5.0, 2.0, 8.0]
        out = summarize(values, 2, aggregate=aggregate)
        expected = {"min": [1.0, 2.0], "max": [5.0, 8.0],
                    "median": [3.0, 5.0]}[aggregate]
        assert out.tolist() == expected

    def test_unknown_aggregate(self):
        with pytest.raises(ParameterError):
            summarize([1.0, 2.0], 2, aggregate="mode")


class TestSegmentation:
    def test_segment_bounds(self):
        values = np.arange(10, dtype=float) / 100
        out = segment(values, 2, 4)
        assert np.array_equal(out, values[2:6])

    def test_segment_validation(self):
        values = np.arange(10, dtype=float)
        with pytest.raises(ParameterError):
            segment(values, 8, 5)
        with pytest.raises(ParameterError):
            segment(values, -1, 5)
        with pytest.raises(ParameterError):
            segment(values, 0, 0)

    @given(st.integers(0, 2**31), st.integers(1, 50))
    @settings(max_examples=30)
    def test_random_segment_is_contiguous_slice(self, seed, length):
        values = np.arange(100, dtype=float) / 1000
        out = random_segment(values, length, rng=seed)
        assert len(out) == length
        start = int(round(out[0] * 1000))
        assert np.array_equal(out, values[start:start + length])


class TestLinear:
    def test_scale_and_offset(self):
        out = linear_transform([1.0, 2.0], scale=2.0, offset=1.0)
        assert out.tolist() == [3.0, 5.0]

    def test_zero_scale_rejected(self):
        with pytest.raises(ParameterError):
            linear_transform([1.0], scale=0.0)

    def test_nonfinite_rejected(self):
        with pytest.raises(ParameterError):
            linear_transform([1.0], scale=float("inf"))


class TestCompose:
    def test_left_to_right_application(self):
        pipeline = Compose([
            ("scale", lambda v: v * 2.0),
            ("shift", lambda v: v + 1.0),
        ])
        assert pipeline(np.asarray([1.0])).tolist() == [3.0]

    def test_describe(self):
        pipeline = Compose([("a", lambda v: v), ("b", lambda v: v)])
        assert describe_pipeline(pipeline) == "a -> b"

    def test_fig10b_combination_shapes(self):
        """25% sampling then 25% summarization: length shrinks ~16x."""
        values = np.linspace(-0.4, 0.4, 1600)
        pipeline = Compose([
            ("sampling-4", lambda v: uniform_random_sampling(v, 4, rng=0)),
            ("summarization-4", lambda v: summarize(v, 4)),
        ])
        out = pipeline(values)
        assert len(out) == 100

    def test_empty_pipeline_rejected(self):
        with pytest.raises(ParameterError):
            Compose([])
