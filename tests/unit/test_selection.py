"""Tests for the hash-based selection criterion and bit positions."""

from __future__ import annotations

import pytest

from repro.core.params import WatermarkParams
from repro.core.quantize import Quantizer
from repro.core.selection import (
    bit_position_from_label,
    bit_position_from_value,
    select_watermark_bit,
    selection_index,
)
from repro.errors import ParameterError
from repro.util.hashing import KeyedHasher

PARAMS = WatermarkParams(phi=8)
QUANTIZER = Quantizer(PARAMS.value_bits, PARAMS.avg_extra_bits)
HASHER = KeyedHasher(b"k1")


class TestSelectionIndex:
    def test_in_range(self):
        for i in range(50):
            value = -0.45 + i * 0.018
            assert 0 <= selection_index(value, PARAMS, QUANTIZER, HASHER) < 8

    def test_deterministic(self):
        assert selection_index(0.3, PARAMS, QUANTIZER, HASHER) == \
            selection_index(0.3, PARAMS, QUANTIZER, HASHER)

    def test_depends_on_key(self):
        other = KeyedHasher(b"k2")
        results = [(selection_index(v, PARAMS, QUANTIZER, HASHER),
                    selection_index(v, PARAMS, QUANTIZER, other))
                   for v in [x * 0.017 - 0.4 for x in range(48)]]
        assert any(a != b for a, b in results)

    def test_msb_stability(self):
        """Values in the same selection cell share their index."""
        cell = 2.0 ** -PARAMS.msb_bits  # normalized cell width
        base = 0.25 * cell * 8 + cell * 0.1
        inside = base + cell * 0.5
        assert selection_index(base, PARAMS, QUANTIZER, HASHER) == \
            selection_index(inside, PARAMS, QUANTIZER, HASHER)

    def test_label_adds_entropy(self):
        """Same value with different labels can select different bits."""
        indices = {selection_index(0.3, PARAMS, QUANTIZER, HASHER,
                                   label=label)
                   for label in range(1, 40)}
        assert len(indices) > 1


class TestSelectWatermarkBit:
    def test_selection_fraction_roughly_wm_over_phi(self):
        wm_length = 2
        selected = 0
        n = 400
        for i in range(n):
            bit = select_watermark_bit(-0.45 + i * 0.002, wm_length,
                                       PARAMS, QUANTIZER, HASHER,
                                       label=i + 1)
            if bit is not None:
                selected += 1
                assert 0 <= bit < wm_length
        expected = n * wm_length / PARAMS.phi
        assert 0.5 * expected < selected < 1.7 * expected

    def test_rejects_empty_watermark(self):
        with pytest.raises(ParameterError):
            select_watermark_bit(0.1, 0, PARAMS, QUANTIZER, HASHER)


class TestBitPositions:
    def test_label_position_guard_safe(self):
        for label in range(1, 200):
            position = bit_position_from_label(label, PARAMS, HASHER)
            assert 1 <= position <= PARAMS.lsb_bits - 2

    def test_value_position_guard_safe(self):
        for i in range(100):
            position = bit_position_from_value(-0.4 + i * 0.008, PARAMS,
                                               QUANTIZER, HASHER)
            assert 1 <= position <= PARAMS.lsb_bits - 2

    def test_label_position_varies_with_label(self):
        positions = {bit_position_from_label(label, PARAMS, HASHER)
                     for label in range(1, 64)}
        assert len(positions) > 1

    def test_label_must_be_positive(self):
        with pytest.raises(ParameterError):
            bit_position_from_label(0, PARAMS, HASHER)

    def test_decorrelation_of_label_scheme(self):
        """Same value, different labels => positions spread (Sec 4.1).

        This is the property that defeats the bucket-counting attack:
        knowing the value reveals nothing about the position.
        """
        positions = [bit_position_from_label(label, PARAMS, HASHER)
                     for label in range(1, 129)]
        # Positions should take most of the available range.
        assert len(set(positions)) >= PARAMS.payload_positions // 2
