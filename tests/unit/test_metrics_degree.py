"""Tests for analysis metrics and Sec-4.2 degree estimation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.metrics import (
    label_alteration_fraction,
    major_extreme_labels,
    stream_stat_drift,
)
from repro.core.degree import adjusted_sigma, degree_from_rates, estimate_degree
from repro.core.extremes import average_subset_size
from repro.core.params import WatermarkParams
from repro.errors import DetectionError, ParameterError
from repro.streams.generators import TemperatureSensorGenerator
from repro.transforms.sampling import uniform_random_sampling
from repro.transforms.summarization import summarize

PARAMS = WatermarkParams()


@pytest.fixture(scope="module")
def stream():
    return TemperatureSensorGenerator(eta=100, seed=31).generate(10000)


class TestDegreeFromRates:
    def test_ratio(self):
        assert degree_from_rates(100.0, 25.0) == 4.0

    def test_rate_increase_rejected(self):
        with pytest.raises(ParameterError):
            degree_from_rates(50.0, 100.0)


class TestEstimateDegree:
    @pytest.mark.parametrize("degree", [2, 4])
    def test_sampling_degree_recovered(self, stream, degree):
        reference = average_subset_size(stream, PARAMS.prominence,
                                        PARAMS.delta)
        sampled = uniform_random_sampling(stream, degree, rng=1)
        estimated = estimate_degree(reference, sampled, PARAMS.prominence,
                                    PARAMS.delta)
        assert degree * 0.4 <= estimated <= degree * 2.5

    def test_summarization_degree_recovered(self, stream):
        reference = average_subset_size(stream, PARAMS.prominence,
                                        PARAMS.delta)
        summarized = summarize(stream, 3)
        estimated = estimate_degree(reference, summarized, PARAMS.prominence,
                                    PARAMS.delta)
        assert 1.2 <= estimated <= 7.0

    def test_untransformed_estimates_near_one(self, stream):
        reference = average_subset_size(stream, PARAMS.prominence,
                                        PARAMS.delta)
        estimated = estimate_degree(reference, stream, PARAMS.prominence,
                                    PARAMS.delta)
        assert estimated == pytest.approx(1.0, abs=0.01)

    def test_no_extremes_raises(self):
        with pytest.raises(DetectionError):
            estimate_degree(10.0, np.linspace(-0.4, 0.4, 100),
                            PARAMS.prominence, PARAMS.delta)

    def test_validation(self, stream):
        with pytest.raises(ParameterError):
            estimate_degree(0.0, stream, PARAMS.prominence, PARAMS.delta)


class TestAdjustedSigma:
    def test_floor_semantics(self):
        assert adjusted_sigma(3, 1.0) == 3
        assert adjusted_sigma(3, 2.0) == 1   # floor(1.5) = 1, inclusive
        assert adjusted_sigma(3, 3.0) == 1
        assert adjusted_sigma(8, 2.0) == 4

    def test_never_below_one(self):
        assert adjusted_sigma(3, 100.0) == 1

    def test_validation(self):
        with pytest.raises(ParameterError):
            adjusted_sigma(0, 1.0)
        with pytest.raises(ParameterError):
            adjusted_sigma(3, 0.5)


class TestLabelMetrics:
    def test_identical_streams_zero_alteration(self, stream):
        labels = major_extreme_labels(stream, PARAMS)
        assert label_alteration_fraction(labels, labels) == 0.0

    def test_warmup_nones_skipped(self):
        labels_a = [None, None, 5, 6]
        labels_b = [None, None, 5, 7]
        assert label_alteration_fraction(labels_a, labels_b) == 0.5

    def test_missing_counterpart_counts_as_altered(self):
        labels_a = [None, 3, 4, 5]
        labels_b = [None, 3]
        assert label_alteration_fraction(labels_a, labels_b) == \
            pytest.approx(2 / 3)

    def test_empty_original_rejected(self):
        with pytest.raises(ParameterError):
            label_alteration_fraction([], [])

    def test_label_size_override(self, stream):
        short = major_extreme_labels(stream, PARAMS, lambda_bits=5)
        long = major_extreme_labels(stream, PARAMS, lambda_bits=20)
        defined_short = [x for x in short if x is not None]
        defined_long = [x for x in long if x is not None]
        assert defined_short and defined_long
        assert all(x.bit_length() == 5 for x in defined_short)
        assert all(x.bit_length() == 20 for x in defined_long)
        # Shorter labels need less warm-up.
        assert short.index(defined_short[0]) < long.index(defined_long[0])


class TestStreamStatDrift:
    def test_no_drift_for_identical(self, stream):
        drift = stream_stat_drift(stream, stream)
        assert drift["mean_drift_abs"] == 0.0
        assert drift["std_drift_abs"] == 0.0
        assert drift["max_item_change"] == 0.0

    def test_detects_mean_shift(self, stream):
        drift = stream_stat_drift(stream, stream + 0.001)
        assert drift["mean_drift_abs"] == pytest.approx(0.001)

    def test_length_mismatch_rejected(self, stream):
        with pytest.raises(ParameterError):
            stream_stat_drift(stream, stream[:-1])
