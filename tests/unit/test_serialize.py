"""Tests for evidence serialization."""

from __future__ import annotations

import json

import pytest

from repro.core.detector import DetectionResult
from repro.core.embedder import EmbedReport
from repro.core.scanner import ScanCounters
from repro.core.serialize import (
    detection_from_dict,
    detection_to_dict,
    load_json,
    report_from_dict,
    report_to_dict,
    save_json,
)
from repro.errors import ParameterError


def make_detection() -> DetectionResult:
    return DetectionResult(
        buckets_true=[12, 3], buckets_false=[2, 9],
        counters=ScanCounters(items=5000, extremes_confirmed=60, majors=55,
                              warmup_skips=7, selected=30,
                              missed_evictions=1, subset_size_sum=600),
        abstentions=4, vote_threshold=1)


def make_report() -> EmbedReport:
    return EmbedReport(
        counters=ScanCounters(items=5000, extremes_confirmed=60, majors=55,
                              selected=30, subset_size_sum=600),
        embedded=28, search_failures=2, quality_rollbacks=1,
        total_search_iterations=900, altered_items=150,
        sum_abs_alteration=1.5e-6, max_abs_alteration=3e-8)


class TestDetectionRoundtrip:
    def test_dict_roundtrip_preserves_everything(self):
        original = make_detection()
        restored = detection_from_dict(detection_to_dict(original))
        assert restored.buckets_true == original.buckets_true
        assert restored.buckets_false == original.buckets_false
        assert restored.abstentions == original.abstentions
        assert restored.vote_threshold == original.vote_threshold
        assert restored.counters.items == original.counters.items

    def test_derived_values_survive(self):
        restored = detection_from_dict(detection_to_dict(make_detection()))
        original = make_detection()
        assert restored.bias(0) == original.bias(0)
        assert restored.wm_estimate() == original.wm_estimate()
        assert restored.exact_false_positive(0) == \
            original.exact_false_positive(0)

    def test_dict_is_json_compatible(self):
        text = json.dumps(detection_to_dict(make_detection()))
        assert detection_from_dict(json.loads(text)).bias(0) == 10


class TestReportRoundtrip:
    def test_dict_roundtrip(self):
        original = make_report()
        restored = report_from_dict(report_to_dict(original))
        assert restored.embedded == original.embedded
        assert restored.average_subset_size == original.average_subset_size
        assert restored.max_abs_alteration == original.max_abs_alteration
        assert restored.summary() == original.summary()


class TestFiles:
    def test_save_load_detection(self, tmp_path):
        path = tmp_path / "evidence.json"
        save_json(make_detection(), path)
        loaded = load_json(path)
        assert isinstance(loaded, DetectionResult)
        assert loaded.bias(0) == 10

    def test_save_load_report(self, tmp_path):
        path = tmp_path / "report.json"
        save_json(make_report(), path)
        loaded = load_json(path)
        assert isinstance(loaded, EmbedReport)
        assert loaded.embedded == 28

    def test_unknown_object_rejected(self, tmp_path):
        with pytest.raises(ParameterError):
            save_json({"not": "serializable"}, tmp_path / "x.json")

    def test_kind_mismatch_rejected(self):
        with pytest.raises(ParameterError):
            detection_from_dict(report_to_dict(make_report()))

    def test_future_version_rejected(self, tmp_path):
        data = detection_to_dict(make_detection())
        data["format_version"] = 99
        path = tmp_path / "future.json"
        path.write_text(json.dumps(data))
        with pytest.raises(ParameterError):
            load_json(path)

    def test_unknown_kind_rejected(self, tmp_path):
        path = tmp_path / "odd.json"
        path.write_text(json.dumps({"kind": "mystery"}))
        with pytest.raises(ParameterError):
            load_json(path)
