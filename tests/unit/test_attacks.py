"""Tests for the adversary implementations."""

from __future__ import annotations

import numpy as np
import pytest

from repro.attacks.additive import additive_attack
from repro.attacks.bias_detection import bias_detection_attack
from repro.attacks.correlation import correlation_attack
from repro.attacks.epsilon import epsilon_attack
from repro.attacks.extreme_attack import targeted_extreme_attack
from repro.attacks.suite import AttackSuite
from repro.errors import ParameterError
from repro.streams.generators import TemperatureSensorGenerator


@pytest.fixture(scope="module")
def stream():
    return TemperatureSensorGenerator(eta=60, seed=21).generate(4000)


class TestEpsilonAttack:
    def test_alters_requested_fraction(self, stream):
        attacked = epsilon_attack(stream, tau=0.25, epsilon=0.2, rng=3)
        changed = np.sum(attacked != stream)
        assert 0.2 * len(stream) <= changed <= 0.25 * len(stream)

    def test_zero_tau_is_identity(self, stream):
        attacked = epsilon_attack(stream, tau=0.0, epsilon=0.5, rng=3)
        assert np.array_equal(attacked, stream)

    def test_changes_bounded_by_epsilon(self, stream):
        attacked = epsilon_attack(stream, tau=1.0, epsilon=0.1, mu=0.0,
                                  rng=3, clip=False)
        ratio = attacked / stream
        assert np.all(ratio >= 0.9 - 1e-12)
        assert np.all(ratio <= 1.1 + 1e-12)

    def test_mu_shifts_mean_of_factors(self, stream):
        attacked = epsilon_attack(stream, tau=1.0, epsilon=0.01, mu=0.2,
                                  rng=3, clip=False)
        assert np.mean(attacked / stream) == pytest.approx(1.2, abs=0.01)

    def test_clipping_keeps_normalized_domain(self, stream):
        attacked = epsilon_attack(stream, tau=1.0, epsilon=0.9, rng=3)
        assert attacked.min() > -0.5
        assert attacked.max() < 0.5

    def test_original_untouched(self, stream):
        before = stream.copy()
        epsilon_attack(stream, tau=0.5, epsilon=0.5, rng=3)
        assert np.array_equal(stream, before)

    def test_validation(self, stream):
        with pytest.raises(ParameterError):
            epsilon_attack(stream, tau=1.5, epsilon=0.1)
        with pytest.raises(ParameterError):
            epsilon_attack(stream, tau=0.5, epsilon=-0.1)


class TestAdditiveAttack:
    def test_lengthens_stream(self, stream):
        attacked = additive_attack(stream, fraction=0.1, rng=5)
        assert len(attacked) == len(stream) + round(0.1 * len(stream))

    def test_original_subsequence_preserved(self, stream):
        """Insertion never reorders the original values."""
        attacked = additive_attack(stream, fraction=0.05, rng=5)
        it = iter(attacked)
        assert all(any(x == v for x in it) for v in stream[:50])

    def test_empirical_values_from_distribution(self, stream):
        attacked = additive_attack(stream, fraction=0.2, rng=5,
                                   distribution="empirical")
        assert set(np.round(attacked, 12)) <= set(np.round(stream, 12))

    def test_fraction_bounded(self, stream):
        with pytest.raises(ParameterError):
            additive_attack(stream, fraction=0.7)
        with pytest.raises(ParameterError):
            additive_attack(stream, fraction=0.0)

    def test_unknown_distribution(self, stream):
        with pytest.raises(ParameterError):
            additive_attack(stream, fraction=0.1, distribution="cauchy")


class TestCorrelationAttack:
    def test_returns_report(self, stream):
        attacked, report = correlation_attack(stream, rng=7)
        assert len(attacked) == len(stream)
        assert report.extremes_examined > 0

    def test_no_bias_in_clean_stream(self, stream):
        """Unwatermarked noise-free values should mostly not be flagged
        beyond chance; the attack is only effective against the
        value-correlated initial encoding (see integration tests)."""
        _, report = correlation_attack(stream, rng=7, bias_threshold=0.49,
                                       min_bucket=6)
        assert report.positions_found <= report.buckets_examined * 4

    def test_validation(self, stream):
        with pytest.raises(ParameterError):
            correlation_attack(stream, bias_threshold=0.8)
        with pytest.raises(ParameterError):
            correlation_attack(stream, beta_guess=0)


class TestBiasDetectionAttack:
    def test_runs_and_reports(self, stream):
        attacked, report = bias_detection_attack(stream, rng=9)
        assert len(attacked) == len(stream)
        assert report.flagged_extremes >= 0

    def test_validation(self, stream):
        with pytest.raises(ParameterError):
            bias_detection_attack(stream, agreement_threshold=0.4)
        with pytest.raises(ParameterError):
            bias_detection_attack(stream, min_subset=1)


class TestTargetedExtremeAttack:
    def test_attacks_every_a1th_extreme(self, stream):
        attacked, report = targeted_extreme_attack(stream, a1=5, a2=0.5,
                                                   rng=11)
        assert len(attacked) == len(stream)
        assert report.extremes_attacked == pytest.approx(
            report.extremes_total / 5, abs=1.0)
        assert report.items_altered > 0

    def test_alterations_are_low_bit_noise(self, stream):
        attacked, _ = targeted_extreme_attack(stream, a1=3, a2=1.0, rng=11,
                                              lsb_bits=12)
        max_change = np.max(np.abs(attacked - stream))
        assert max_change <= 2.0 ** (12 - 32) + 1e-12

    def test_validation(self, stream):
        with pytest.raises(ParameterError):
            targeted_extreme_attack(stream, a1=1, a2=0.5)
        with pytest.raises(ParameterError):
            targeted_extreme_attack(stream, a1=3, a2=0.0)


class TestAttackSuite:
    def test_runs_all_default_attacks(self, stream):
        suite = AttackSuite(seed=13)
        outcomes = suite.run(stream)
        assert [o.name for o in outcomes] == suite.names
        assert all(len(o.values) > 0 for o in outcomes)

    def test_reproducible(self, stream):
        a = AttackSuite(seed=13).run(stream)
        b = AttackSuite(seed=13).run(stream)
        for x, y in zip(a, b):
            assert np.array_equal(x.values, y.values)

    def test_subset_selection(self, stream):
        suite = AttackSuite(seed=13, include=["sampling-4"])
        assert suite.names == ["sampling-4"]

    def test_unknown_attack_rejected(self):
        with pytest.raises(ParameterError):
            AttackSuite(include=["nuke"])
