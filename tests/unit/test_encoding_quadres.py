"""Tests for the quadratic-residue alternative encoding."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.encoding_quadres import (
    QuadResEncoding,
    derive_prime,
    is_probable_prime,
    is_quadratic_residue,
)
from repro.core.params import WatermarkParams
from repro.core.quantize import Quantizer
from repro.errors import EncodingSearchExhausted, ParameterError
from repro.util.hashing import KeyedHasher

PARAMS = WatermarkParams()
QUANTIZER = Quantizer(PARAMS.value_bits, PARAMS.avg_extra_bits)
HASHER = KeyedHasher(b"k1")


class TestPrimality:
    @pytest.mark.parametrize("n,expected", [
        (0, False), (1, False), (2, True), (3, True), (4, False),
        (97, True), (561, False),          # Carmichael number
        (2_147_483_647, True),             # Mersenne prime 2^31 - 1
        (2_147_483_649, False),
    ])
    def test_known_values(self, n, expected):
        assert is_probable_prime(n) is expected

    def test_derive_prime_is_prime_and_deterministic(self):
        p1 = derive_prime(HASHER)
        p2 = derive_prime(HASHER)
        assert p1 == p2
        assert is_probable_prime(p1)
        assert p1.bit_length() == 61

    def test_derive_prime_key_dependent(self):
        assert derive_prime(HASHER) != derive_prime(KeyedHasher(b"k2"))

    def test_derive_prime_size_validation(self):
        with pytest.raises(ParameterError):
            derive_prime(HASHER, bits=16)


class TestQuadraticResidue:
    def test_euler_criterion_small_prime(self):
        # Residues mod 11 are {1, 3, 4, 5, 9}.
        residues = {x for x in range(1, 11) if is_quadratic_residue(x, 11)}
        assert residues == {1, 3, 4, 5, 9}

    def test_zero_is_nonresidue_by_convention(self):
        assert not is_quadratic_residue(0, 11)

    def test_squares_are_residues(self):
        p = derive_prime(HASHER)
        for x in (17, 123456, 987654321):
            assert is_quadratic_residue((x * x) % p, p)


class TestEncoding:
    @pytest.mark.parametrize("bit", [True, False])
    def test_roundtrip(self, bit):
        encoding = QuadResEncoding(PARAMS, QUANTIZER, HASHER, n_prefixes=2)
        subset = [QUANTIZER.quantize(0.29 + i * 1e-3) for i in range(4)]
        outcome = encoding.embed(subset, 1, 1, bit)
        floats = QUANTIZER.dequantize_array(outcome.q_values)
        vote = encoding.detect(np.asarray(floats), 1, 1)
        assert vote.decision is bit

    def test_every_member_testifies(self):
        """Per-member encoding is what survives sampling."""
        encoding = QuadResEncoding(PARAMS, QUANTIZER, HASHER, n_prefixes=2)
        subset = [QUANTIZER.quantize(0.29 + i * 1e-3) for i in range(5)]
        outcome = encoding.embed(subset, 2, 1, True)
        for q in outcome.q_values:
            floats = QUANTIZER.dequantize_array([q])
            assert encoding.detect(np.asarray(floats), 0, 1).decision is True

    def test_alterations_confined_to_lsb(self):
        encoding = QuadResEncoding(PARAMS, QUANTIZER, HASHER, n_prefixes=2)
        subset = [QUANTIZER.quantize(0.29 + i * 1e-3) for i in range(4)]
        outcome = encoding.embed(subset, 1, 1, True)
        for old, new in zip(subset, outcome.q_values):
            assert old >> PARAMS.lsb_bits == new >> PARAMS.lsb_bits

    def test_more_prefixes_cost_more(self):
        subset = [QUANTIZER.quantize(0.29 + i * 1e-3) for i in range(4)]
        iterations = []
        for k in (1, 3):
            encoding = QuadResEncoding(PARAMS, QUANTIZER, HASHER,
                                       n_prefixes=k)
            iterations.append(encoding.embed(list(subset), 1, 1,
                                             True).iterations)
        assert iterations[1] > iterations[0]

    def test_prefix_count_validation(self):
        with pytest.raises(ParameterError):
            QuadResEncoding(PARAMS, QUANTIZER, HASHER, n_prefixes=0)
        with pytest.raises(ParameterError):
            QuadResEncoding(PARAMS, QUANTIZER, HASHER,
                            n_prefixes=PARAMS.lsb_bits)

    def test_stats_reset_when_search_raises(self):
        """Regression: a failed embed must not leave stale stats behind.

        With a 2-iteration budget and k=1, q=0 encodes but q=52 does
        not (both candidate LSB patterns are non-residues under this
        key).  The failed embed must clear ``last_stats`` rather than
        leave the earlier embed's stats dangling.
        """
        params = PARAMS.with_updates(max_search_iterations=2)
        encoding = QuadResEncoding(params, QUANTIZER, HASHER, n_prefixes=1)
        encoding.embed([0], 0, 1, True)
        assert encoding.last_stats is not None
        with pytest.raises(EncodingSearchExhausted):
            encoding.embed([52], 0, 1, True)
        assert encoding.last_stats is None

    def test_random_data_votes_balanced(self):
        encoding = QuadResEncoding(PARAMS, QUANTIZER, HASHER, n_prefixes=2)
        rng = np.random.default_rng(4)
        decisions = []
        for _ in range(200):
            value = rng.uniform(-0.45, 0.45)
            vote = encoding.detect(np.asarray([value]), 0, 1)
            decisions.append(vote.decision)
        n_true = sum(1 for d in decisions if d is True)
        n_false = sum(1 for d in decisions if d is False)
        # With k=2 prefixes ~1/4 of random values match each convention.
        assert n_true + n_false < 160
        assert abs(n_true - n_false) < 40
