"""Unit and property tests for the fixed-point quantizer."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.quantize import Quantizer
from repro.errors import ParameterError

normalized = st.floats(min_value=-0.499, max_value=0.499,
                       allow_nan=False, allow_infinity=False)


class TestConstruction:
    def test_rejects_tiny_width(self):
        with pytest.raises(ParameterError):
            Quantizer(value_bits=4)

    def test_rejects_mantissa_overflow(self):
        # value_bits + avg_extra_bits must stay within the double mantissa.
        with pytest.raises(ParameterError):
            Quantizer(value_bits=48, avg_extra_bits=8)

    def test_exposed_widths(self):
        q = Quantizer(32, 8)
        assert q.value_bits == 32
        assert q.avg_key_bits == 40
        assert q.resolution == pytest.approx(2.0 ** -32)


class TestRoundTrips:
    @given(st.integers(0, 2**32 - 1))
    def test_quantize_dequantize_exact(self, cell):
        """The midpoint rule makes q -> v -> q the identity."""
        q = Quantizer(32)
        assert q.quantize(q.dequantize(cell)) == cell

    @given(normalized)
    def test_dequantize_error_below_resolution(self, v):
        q = Quantizer(32)
        assert abs(q.requantize(v) - v) <= q.resolution

    @given(normalized, normalized)
    def test_quantization_is_monotone(self, a, b):
        q = Quantizer(24)
        if a <= b:
            assert q.quantize(a) <= q.quantize(b)

    def test_out_of_range_clipped(self):
        q = Quantizer(16)
        assert q.quantize(5.0) == 2**16 - 1
        assert q.quantize(-5.0) == 0

    def test_dequantize_rejects_out_of_range(self):
        q = Quantizer(16)
        with pytest.raises(ParameterError):
            q.dequantize(2**16)
        with pytest.raises(ParameterError):
            q.dequantize(-1)


class TestArrayForms:
    def test_array_matches_scalar(self):
        q = Quantizer(32)
        values = np.linspace(-0.49, 0.49, 101)
        array_result = q.quantize_array(values)
        scalar_result = [q.quantize(float(v)) for v in values]
        assert array_result.tolist() == scalar_result

    def test_dequantize_array_matches_scalar(self):
        q = Quantizer(32)
        cells = np.arange(0, 1000, 37)
        array_result = q.dequantize_array(cells)
        scalar_result = [q.dequantize(int(c)) for c in cells]
        assert np.array_equal(array_result, np.asarray(scalar_result))

    def test_dequantize_array_rejects_out_of_range(self):
        q = Quantizer(16)
        with pytest.raises(ParameterError):
            q.dequantize_array([0, 2**16])


class TestMsbHelpers:
    def test_msb_of_value(self):
        q = Quantizer(32)
        # v = 0 quantizes to mid-range => top bit set.
        assert q.msb(0.0, 1) == 1

    @given(normalized, normalized)
    def test_abs_msb_monotone_in_magnitude(self, a, b):
        q = Quantizer(32)
        if abs(a) <= abs(b):
            assert q.abs_msb(a, 16) <= q.abs_msb(b, 16)


class TestAverageKey:
    def test_singleton_key_matches_scalar_form(self):
        q = Quantizer(32, 8)
        v = q.dequantize(12345678)
        assert q.average_key([v]) == q.average_key_scalar(v)

    def test_key_changes_with_single_lsb_step(self):
        """One quantization-step change in one member must move the key.

        This is the property that makes the multi-hash search able to
        steer every constrained average (Sec 4.3).
        """
        q = Quantizer(32, 8)
        members = [q.dequantize(2**31 + i) for i in range(5)]
        bumped = list(members)
        bumped[2] = q.dequantize(2**31 + 2 + 1)
        assert q.average_key(members) != q.average_key(bumped)

    def test_key_deterministic_across_slicing(self):
        """Embedder (1-D slice) and attacker (reshaped row) agree."""
        q = Quantizer(32, 8)
        rng = np.random.default_rng(5)
        data = q.dequantize_array(rng.integers(0, 2**32, size=30))
        flat_key = q.average_key(data[6:12])
        row = data[:30].reshape(5, 6)[1]
        assert q.average_key(row) == flat_key

    def test_empty_range_rejected(self):
        with pytest.raises(ParameterError):
            Quantizer(32).average_key([])
