"""Validation tests for WatermarkParams (every documented invariant)."""

from __future__ import annotations

import pytest

from repro.core.params import WatermarkParams
from repro.errors import ParameterError


class TestDefaults:
    def test_defaults_valid(self):
        params = WatermarkParams()
        assert params.sigma == 3
        assert params.phi >= 2

    def test_immutability(self):
        params = WatermarkParams()
        with pytest.raises(AttributeError):
            params.sigma = 5  # type: ignore[misc]

    def test_with_updates_revalidates(self):
        params = WatermarkParams()
        updated = params.with_updates(phi=10)
        assert updated.phi == 10
        with pytest.raises(ParameterError):
            params.with_updates(phi=1)


class TestInvariants:
    @pytest.mark.parametrize("field,value", [
        ("value_bits", 4),
        ("value_bits", 64),
        ("msb_bits", 0),
        ("lsb_bits", 2),
        ("sigma", 0),
        ("delta", 0.0),
        ("delta", 0.6),
        ("prominence", 0.0),
        ("prominence", 1.5),
        ("majority_relaxation", 0.0),
        ("majority_relaxation", 1.5),
        ("phi", 1),
        ("lambda_bits", 1),
        ("skip", 0),
        ("label_msb_bits", 0),
        ("omega", 0),
        ("omega", 20),
        ("active_run_length", 0),
        ("max_subset_embed", 0),
        ("max_search_iterations", 0),
        ("window_size", 8),
        ("vote_threshold", -1),
    ])
    def test_bad_field_rejected(self, field, value):
        with pytest.raises(ParameterError):
            WatermarkParams(**{field: value})

    def test_msb_plus_lsb_bounded_by_value_bits(self):
        with pytest.raises(ParameterError):
            WatermarkParams(value_bits=16, msb_bits=8, lsb_bits=12)

    def test_delta_bounded_by_msb_cell(self):
        # Sec 3.2: subset members must share their selection bits.
        with pytest.raises(ParameterError):
            WatermarkParams(msb_bits=8, delta=0.05)

    def test_prominence_must_exceed_delta(self):
        with pytest.raises(ParameterError):
            WatermarkParams(delta=0.02, prominence=0.01)

    def test_detect_subset_cap_at_least_embed_cap(self):
        with pytest.raises(ParameterError):
            WatermarkParams(max_subset_embed=10, max_subset_detect=5)

    def test_avg_key_must_fit_double_mantissa(self):
        with pytest.raises(ParameterError):
            WatermarkParams(value_bits=48, avg_extra_bits=8)


class TestDerived:
    def test_label_history(self):
        params = WatermarkParams(lambda_bits=16, skip=2)
        assert params.label_history == 30

    def test_payload_positions(self):
        assert WatermarkParams(lsb_bits=16).payload_positions == 14

    def test_max_alteration(self):
        params = WatermarkParams(value_bits=32, lsb_bits=16)
        assert params.max_alteration == pytest.approx(2.0 ** -16)

    def test_selection_fraction(self):
        params = WatermarkParams(phi=8)
        assert params.selection_fraction(1) == pytest.approx(1 / 8)
        assert params.selection_fraction(4) == pytest.approx(0.5)

    def test_selection_fraction_capped_at_one(self):
        assert WatermarkParams(phi=2).selection_fraction(10) == 1.0

    def test_validate_for_watermark(self):
        params = WatermarkParams(phi=8)
        params.validate_for_watermark(4)  # phi > b(wm): fine
        with pytest.raises(ParameterError):
            params.validate_for_watermark(8)
        with pytest.raises(ParameterError):
            params.validate_for_watermark(0)
