"""Supervisor: restart loop, backoff, circuit breaker, clean stop.

Children are tiny ``python -c`` scripts driven through counter files in
``tmp_path``, so every state transition of the supervision loop —
clean exit, crash-then-recover, crash loop, signal-forwarded drain —
is exercised against real processes with real exit codes.
"""

from __future__ import annotations

import json
import signal
import subprocess
import sys
import threading
import time

import pytest

from repro.chaos import GIVE_UP_EXIT, Supervisor, supervise_serve
from repro.errors import ParameterError


def _python(code: str) -> "list[str]":
    return [sys.executable, "-c", code]


def _supervisor(command, events, **options):
    options.setdefault("backoff_base", 0.01)
    options.setdefault("backoff_max", 0.02)
    return Supervisor(command, emit=events.append, **options)


class TestLifecycle:
    def test_clean_exit_stops_supervision(self):
        events = []
        supervisor = _supervisor(_python("raise SystemExit(0)"), events)
        assert supervisor.run() == 0
        assert supervisor.state == "stopped"
        assert supervisor.restarts == 0
        actions = [e["action"] for e in events]
        assert actions == ["start", "exit", "stopped"]
        assert events[1]["returncode"] == 0

    def test_crash_then_recover_restarts_until_success(self, tmp_path):
        """Child fails twice, then succeeds: two restarts, backoff
        between them, and the run still ends with exit code 0."""
        counter = tmp_path / "lives"
        code = (f"import pathlib; p = pathlib.Path({str(counter)!r}); "
                "n = int(p.read_text()) if p.exists() else 0; "
                "p.write_text(str(n + 1)); "
                "raise SystemExit(0 if n >= 2 else 1)")
        events = []
        supervisor = _supervisor(_python(code), events, max_restarts=10)
        assert supervisor.run() == 0
        assert supervisor.restarts == 2
        actions = [e["action"] for e in events]
        assert actions.count("start") == 3
        assert actions.count("backoff") == 2
        assert actions[-1] == "stopped"
        exit_codes = [e["returncode"] for e in events
                      if e["action"] == "exit"]
        assert exit_codes == [1, 1, 0]

    def test_restart_args_appended_only_on_restarts(self, tmp_path):
        """The first launch runs the plain command; every restart adds
        the restart args exactly once (the --recover contract)."""
        log = tmp_path / "argv.jsonl"
        counter = tmp_path / "lives"
        code = (
            "import json, pathlib, sys; "
            f"pathlib.Path({str(log)!r}).open('a').write("
            "json.dumps(sys.argv[1:]) + '\\n'); "
            f"p = pathlib.Path({str(counter)!r}); "
            "n = int(p.read_text()) if p.exists() else 0; "
            "p.write_text(str(n + 1)); "
            "raise SystemExit(0 if n >= 2 else 1)")
        events = []
        supervisor = _supervisor(_python(code) + ["--port", "7000"],
                                 events, restart_args=["--recover"],
                                 max_restarts=10)
        assert supervisor.run() == 0
        argvs = [json.loads(line) for line in
                 log.read_text().splitlines()]
        assert argvs[0] == ["--port", "7000"]
        assert argvs[1:] == [["--port", "7000", "--recover"]] * 2

    def test_crash_loop_trips_the_circuit_breaker(self):
        events = []
        supervisor = _supervisor(_python("raise SystemExit(9)"), events,
                                 max_restarts=2, restart_window=60.0)
        assert supervisor.run() == GIVE_UP_EXIT
        assert supervisor.state == "gave-up"
        actions = [e["action"] for e in events]
        # max_restarts=2 allows two restarts: 3 starts, then give-up.
        assert actions.count("start") == 3
        assert actions[-1] == "give-up"
        assert events[-1]["recent_restarts"] == 2

    def test_backoff_grows_exponentially_to_the_cap(self):
        events = []
        supervisor = _supervisor(_python("raise SystemExit(1)"), events,
                                 backoff_base=0.01, backoff_max=0.04,
                                 max_restarts=4, restart_window=60.0)
        supervisor.run()
        delays = [e["delay"] for e in events if e["action"] == "backoff"]
        assert delays == [0.01, 0.02, 0.04, 0.04]


class TestStopRequests:
    def test_request_stop_forwards_sigterm_for_a_clean_drain(self):
        """A child that catches SIGTERM and exits 0 ends supervision
        with exit code 0 — the drain path, not a restart."""
        code = ("import signal, sys, time; "
                "signal.signal(signal.SIGTERM, "
                "lambda *a: sys.exit(0)); "
                "print('up', flush=True); time.sleep(30)")
        events = []
        supervisor = _supervisor(_python(code), events)
        timer = threading.Timer(0.5, supervisor.request_stop)
        timer.start()
        try:
            started = time.monotonic()
            assert supervisor.run() == 0
            assert time.monotonic() - started < 25
        finally:
            timer.cancel()
        assert supervisor.state == "stopped"
        assert [e["action"] for e in events] == ["start", "exit",
                                                 "stopped"]

    def test_stop_during_backoff_does_not_restart(self):
        events = []
        supervisor = _supervisor(_python("raise SystemExit(1)"), events,
                                 backoff_base=5.0, backoff_max=5.0,
                                 max_restarts=10)
        timer = threading.Timer(0.5, supervisor.request_stop)
        timer.start()
        try:
            started = time.monotonic()
            assert supervisor.run() == 1
            # The 5s backoff sleep was cut short by the stop request.
            assert time.monotonic() - started < 4
        finally:
            timer.cancel()
        assert [e["action"] for e in events].count("start") == 1

    def test_stop_before_nonzero_exit_reports_child_code(self):
        """A stop requested while the child is dying keeps the child's
        exit code instead of restarting it."""
        code = "import time; time.sleep(30)"
        events = []
        supervisor = _supervisor(_python(code), events)

        def kill_child():
            supervisor.request_stop(signal.SIGTERM)

        timer = threading.Timer(0.5, kill_child)
        timer.start()
        try:
            # SIGTERM is forwarded; an uncatching child dies -SIGTERM.
            assert supervisor.run() == -signal.SIGTERM
        finally:
            timer.cancel()
        assert supervisor.state == "stopped"


class TestConstruction:
    def test_empty_command_rejected(self):
        with pytest.raises(ParameterError, match="command"):
            Supervisor([])

    def test_supervise_serve_builds_recover_restarts(self):
        supervisor = supervise_serve(["--port", "7000"])
        assert supervisor._command == [sys.executable, "-m", "repro",
                                       "serve", "--port", "7000"]
        assert supervisor._restart_args == ["--recover"]

    def test_supervise_serve_does_not_duplicate_recover(self):
        supervisor = supervise_serve(["--port", "7000", "--recover"])
        assert supervisor._restart_args == []

    def test_options_are_clamped(self):
        supervisor = Supervisor(["true"], max_restarts=-5,
                                restart_window=0.0, backoff_base=-1,
                                backoff_max=-2)
        assert supervisor._max_restarts == 0
        assert supervisor._restart_window == 0.1
        assert supervisor._backoff_base == 0.0
        assert supervisor._backoff_max == 0.0


class TestCliEntry:
    def test_repro_supervise_runs_and_restarts(self, tmp_path):
        """`repro supervise` end to end: a crashing dummy child is
        restarted with --recover appended, then the breaker opens."""
        import socket

        # Occupy a port so every serve life dies on bind.
        blocker = socket.socket()
        blocker.bind(("127.0.0.1", 0))
        blocker.listen(1)
        port = blocker.getsockname()[1]
        try:
            result = subprocess.run(
                [sys.executable, "-m", "repro", "supervise",
                 "--max-restarts", "1", "--restart-window", "60",
                 "--backoff-base", "0.01", "--backoff-max", "0.01",
                 "--", "--port", str(port),
                 "--store", str(tmp_path / "s")],
                capture_output=True, text=True, timeout=120)
        finally:
            blocker.close()
        # The address is taken: serve exits non-zero each life, so the
        # supervisor restarts once and then gives up with exit code 3.
        assert result.returncode == GIVE_UP_EXIT
        events = [json.loads(line)
                  for line in result.stdout.splitlines()
                  if line.startswith('{"event": "supervisor"')]
        actions = [e["action"] for e in events]
        assert actions.count("start") == 2
        assert actions[-1] == "give-up"
        restarted = [e for e in events
                     if e["action"] == "start" and e["restart"]]
        assert all("--recover" in e["argv"] for e in restarted)
