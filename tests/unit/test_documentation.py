"""Documentation quality gate: every public item carries a docstring.

Deliverable (e) requires doc comments on every public item; this test
makes the requirement executable so it cannot silently regress.
"""

from __future__ import annotations

import importlib
import inspect
import pkgutil

import pytest

import repro

PACKAGES = ["repro", "repro.core", "repro.streams", "repro.transforms",
            "repro.attacks", "repro.analysis", "repro.experiments",
            "repro.util", "repro.server"]


def iter_modules() -> list[str]:
    names: list[str] = []
    for package_name in PACKAGES:
        package = importlib.import_module(package_name)
        names.append(package_name)
        for info in pkgutil.iter_modules(package.__path__):
            if not info.ispkg:
                names.append(f"{package_name}.{info.name}")
    return sorted(set(names))


@pytest.mark.parametrize("module_name", iter_modules())
def test_module_has_docstring(module_name):
    module = importlib.import_module(module_name)
    assert module.__doc__ and module.__doc__.strip(), module_name


@pytest.mark.parametrize("module_name", iter_modules())
def test_public_callables_documented(module_name):
    module = importlib.import_module(module_name)
    undocumented: list[str] = []
    for name, obj in vars(module).items():
        if name.startswith("_"):
            continue
        if not (inspect.isclass(obj) or inspect.isfunction(obj)):
            continue
        if getattr(obj, "__module__", None) != module_name:
            continue  # re-exports are documented at their home
        if not (obj.__doc__ and obj.__doc__.strip()):
            undocumented.append(name)
        if inspect.isclass(obj):
            for method_name, method in vars(obj).items():
                if method_name.startswith("_"):
                    continue
                if not inspect.isfunction(method):
                    continue
                if not (method.__doc__ and method.__doc__.strip()):
                    undocumented.append(f"{name}.{method_name}")
    assert not undocumented, (
        f"{module_name}: missing docstrings on {undocumented}"
    )


def test_public_api_all_lists_resolve():
    """Every name in __all__ must actually exist."""
    for package_name in PACKAGES:
        module = importlib.import_module(package_name)
        for name in getattr(module, "__all__", []):
            assert hasattr(module, name), f"{package_name}.{name}"


def test_version_exposed():
    assert repro.__version__ == "1.0.0"
