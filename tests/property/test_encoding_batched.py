"""Property tests: batched encoding hot paths == retained scalar oracles.

The PR-8 performance work batched the multi-hash search/detection and
table-backed the quadratic-residue prefix checks.  The scalar code
paths were kept verbatim (``batched=False`` / ``*_scalar`` methods) as
oracles; these tests pin the batched paths to them bit-for-bit:

* multihash pruned + random embeds: identical chosen configuration,
  identical :class:`MultihashStats` (iterations, hash evaluations),
  identical ``EncodingSearchExhausted`` raise point *and message*, and
  — for the random method — an identical post-embed RNG stream
  position (downstream embeds consume the same generator);
* multihash detection: identical vote;
* quadres embeds and detection: identical values, stats and votes, via
  the Jacobi-backed residue table vs Euler's criterion;
* :func:`jacobi_symbol` agrees with :func:`is_quadratic_residue` on the
  derived primes.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.encoding_multihash import MultihashEncoding
from repro.core.encoding_quadres import (
    QuadResEncoding,
    derive_prime,
    is_quadratic_residue,
    jacobi_symbol,
)
from repro.core.params import WatermarkParams
from repro.core.quantize import Quantizer
from repro.errors import EncodingSearchExhausted
from repro.util.hashing import KeyedHasher

# ----------------------------------------------------------------------
# strategies
# ----------------------------------------------------------------------

keys = st.binary(min_size=1, max_size=40)
labels = st.integers(min_value=0, max_value=2**31 - 1)
bits = st.booleans()


@st.composite
def multihash_cases(draw):
    """A full (params, quantizer, subset) configuration for one embed."""
    lsb_bits = draw(st.integers(min_value=4, max_value=16))
    value_bits = draw(st.integers(min_value=16, max_value=32))
    params = WatermarkParams(
        lsb_bits=lsb_bits,
        omega=draw(st.integers(min_value=1, max_value=3)),
        active_run_length=draw(st.integers(min_value=1, max_value=4)),
        max_search_iterations=draw(st.integers(min_value=50,
                                               max_value=2000)),
    )
    quantizer = Quantizer(value_bits=value_bits,
                          avg_extra_bits=draw(st.integers(min_value=2,
                                                          max_value=8)))
    size = draw(st.integers(min_value=1, max_value=10))
    q_subset = draw(st.lists(
        st.integers(min_value=0, max_value=(1 << value_bits) - 1),
        min_size=size, max_size=size))
    offset = draw(st.integers(min_value=0, max_value=size - 1))
    return params, quantizer, q_subset, offset


def _embed_or_raise(encoding, q_subset, offset, label, bit):
    try:
        outcome = encoding.embed(q_subset, offset, label, bit)
        return outcome.q_values, outcome.iterations, None
    except EncodingSearchExhausted as exc:
        return None, None, str(exc)


# ----------------------------------------------------------------------
# multihash
# ----------------------------------------------------------------------

class TestMultihashBatchedParity:

    @pytest.mark.parametrize("method", ["pruned", "random"])
    @settings(max_examples=40, deadline=None)
    @given(case=multihash_cases(), key=keys, label=labels, bit=bits,
           seed=st.integers(min_value=0, max_value=2**31 - 1))
    def test_embed_bit_identical(self, method, case, key, label, bit,
                                 seed):
        params, quantizer, q_subset, offset = case
        hasher = KeyedHasher(key)
        batched = MultihashEncoding(params, quantizer, hasher,
                                    method=method, rng=seed, batched=True)
        scalar = MultihashEncoding(params, quantizer, hasher,
                                   method=method, rng=seed, batched=False)
        got = _embed_or_raise(batched, q_subset, offset, label, bit)
        want = _embed_or_raise(scalar, q_subset, offset, label, bit)
        assert got == want
        assert batched.last_stats == scalar.last_stats
        if method == "random":
            # Downstream embeds read the same generator: its position
            # after the search must match the scalar's exactly.
            assert int(batched._rng.integers(0, 2**40)) == \
                int(scalar._rng.integers(0, 2**40))

    @settings(max_examples=40, deadline=None)
    @given(case=multihash_cases(), key=keys, label=labels,
           noise=st.floats(min_value=0.0, max_value=1e-3))
    def test_detect_vote_identical(self, case, key, label, noise):
        params, quantizer, q_subset, offset = case
        hasher = KeyedHasher(key)
        encoding = MultihashEncoding(params, quantizer, hasher,
                                     batched=True)
        received = np.asarray(
            [quantizer.dequantize(q) for q in q_subset],
            dtype=np.float64) + noise
        assert encoding.detect(received, offset, label) == \
            encoding.detect_scalar(received, offset, label)


# ----------------------------------------------------------------------
# quadres
# ----------------------------------------------------------------------

@st.composite
def quadres_cases(draw):
    lsb_bits = draw(st.integers(min_value=4, max_value=16))
    value_bits = draw(st.integers(min_value=16, max_value=32))
    params = WatermarkParams(
        lsb_bits=lsb_bits,
        max_search_iterations=draw(st.integers(min_value=20,
                                               max_value=2000)),
    )
    quantizer = Quantizer(value_bits=value_bits, avg_extra_bits=4)
    n_prefixes = draw(st.integers(min_value=1,
                                  max_value=min(lsb_bits - 1, 5)))
    size = draw(st.integers(min_value=1, max_value=10))
    q_subset = draw(st.lists(
        st.integers(min_value=0, max_value=(1 << value_bits) - 1),
        min_size=size, max_size=size))
    offset = draw(st.integers(min_value=0, max_value=size - 1))
    return params, quantizer, n_prefixes, q_subset, offset


class TestQuadResBatchedParity:

    @settings(max_examples=40, deadline=None)
    @given(case=quadres_cases(), key=keys, bit=bits)
    def test_embed_bit_identical(self, case, key, bit):
        params, quantizer, n_prefixes, q_subset, offset = case
        hasher = KeyedHasher(key)
        batched = QuadResEncoding(params, quantizer, hasher,
                                  n_prefixes=n_prefixes, batched=True)
        scalar = QuadResEncoding(params, quantizer, hasher,
                                 n_prefixes=n_prefixes, batched=False)
        got = _embed_or_raise(batched, q_subset, offset, 7, bit)
        want = _embed_or_raise(scalar, q_subset, offset, 7, bit)
        assert got == want
        assert batched.last_stats == scalar.last_stats

    @settings(max_examples=40, deadline=None)
    @given(case=quadres_cases(), key=keys,
           noise=st.floats(min_value=0.0, max_value=1e-3))
    def test_detect_vote_identical(self, case, key, noise):
        params, quantizer, n_prefixes, q_subset, offset = case
        hasher = KeyedHasher(key)
        encoding = QuadResEncoding(params, quantizer, hasher,
                                   n_prefixes=n_prefixes, batched=True)
        received = np.asarray(
            [quantizer.dequantize(q) for q in q_subset],
            dtype=np.float64) + noise
        assert encoding.detect(received, offset, 7) == \
            encoding.detect_scalar(received, offset, 7)

    @settings(max_examples=20, deadline=None)
    @given(key=keys, values=st.lists(
        st.integers(min_value=0, max_value=2**62), min_size=1,
        max_size=50))
    def test_jacobi_matches_euler(self, key, values):
        prime = derive_prime(KeyedHasher(key))
        for value in values:
            assert ((value % prime != 0)
                    and jacobi_symbol(value, prime) == 1) == \
                is_quadratic_residue(value, prime)
