"""Property tests: the vectorized scan path is bit-identical to the seed.

The PR-2 performance work rewrote the scanning hot path (ring-buffer
window, candidate-reduced zigzag, block-scanned characteristic subsets,
incremental labels, fused quantization).  Every rewrite must preserve
the seed's scalar behaviour *exactly*:

* :func:`zigzag_pivots` (candidate reduction) vs
  :func:`zigzag_pivots_scalar` (the seed's per-item loop, kept verbatim)
  on random / noisy / plateau streams, whole-array and chunked;
* :func:`characteristic_subset` vs a straight re-implementation of the
  seed's per-item expansion;
* the ring-buffer :class:`SlidingWindow` vs a deque model;
* end-to-end embed/detect digests recorded from the seed revision
  (``tests/fixtures/seed_scan_reference.json``);
* checkpoint/resume at an ingestion-batch boundary.
"""

from __future__ import annotations

import hashlib
import json
from collections import deque
from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (
    DetectionSession,
    ProtectionSession,
    WatermarkParams,
    detect_watermark,
    watermark_stream,
)
from repro.core.extremes import (
    ZigzagState,
    characteristic_subset,
    zigzag_pivots,
    zigzag_pivots_scalar,
)
from repro.core.quantize import Quantizer
from repro.streams.window import SlidingWindow

FIXTURES = Path(__file__).parent.parent / "fixtures"

# ----------------------------------------------------------------------
# stream strategies: random, noisy-periodic, plateau-heavy
# ----------------------------------------------------------------------


@st.composite
def streams(draw, max_size=300):
    n = draw(st.integers(1, max_size))
    seed = draw(st.integers(0, 2**32 - 1))
    kind = draw(st.sampled_from(["random", "noisy", "plateau", "steps"]))
    rng = np.random.default_rng(seed)
    if kind == "random":
        values = rng.uniform(-0.5, 0.5, n)
    elif kind == "noisy":
        span = rng.uniform(1.0, 40.0)
        values = (0.3 * np.sin(np.linspace(0.0, span, n))
                  + rng.normal(0.0, 0.05, n))
    elif kind == "plateau":
        values = np.round(rng.uniform(-0.5, 0.5, n) * 8) / 8.0
    else:  # tiny alphabet: long plateaus, repeated extremes
        values = rng.choice([-0.2, 0.0, 0.0, 0.1, 0.1, 0.3], n)
    return np.clip(values, -0.499, 0.499)


class TestZigzagEquivalence:
    @settings(max_examples=150, deadline=None)
    @given(streams(), st.sampled_from([0.01, 0.05, 0.1, 0.3]))
    def test_whole_array_matches_scalar(self, values, prominence):
        vec_pivots, vec_state = zigzag_pivots(values, prominence)
        ref_pivots, ref_state = zigzag_pivots_scalar(values, prominence)
        assert vec_pivots == ref_pivots
        assert vec_state.to_state() == ref_state.to_state()

    @settings(max_examples=100, deadline=None)
    @given(streams(), st.sampled_from([0.01, 0.05, 0.25]),
           st.integers(1, 60))
    def test_chunked_continuation_matches_scalar(self, values, prominence,
                                                 chunk):
        vec_state, ref_state = ZigzagState.fresh(), ZigzagState.fresh()
        vec_pivots, ref_pivots = [], []
        for lo in range(0, len(values), chunk):
            sub = values[lo:lo + chunk]
            got, vec_state = zigzag_pivots(sub, prominence, vec_state,
                                           offset=lo)
            want, ref_state = zigzag_pivots_scalar(sub, prominence,
                                                   ref_state, offset=lo)
            vec_pivots += got
            ref_pivots += want
        assert vec_pivots == ref_pivots
        assert vec_state.to_state() == ref_state.to_state()


def _subset_scalar(values, index, delta):
    """The seed's per-item characteristic-subset expansion."""
    n = len(values)
    center = float(values[index])
    start = index
    while start > 0 and abs(float(values[start - 1]) - center) < delta:
        start -= 1
    end = index
    while end < n - 1 and abs(float(values[end + 1]) - center) < delta:
        end += 1
    return start, end


class TestSubsetEquivalence:
    @settings(max_examples=150, deadline=None)
    @given(streams(), st.data(),
           st.sampled_from([0.005, 0.02, 0.2, 0.9]))
    def test_matches_scalar_expansion(self, values, data, delta):
        index = data.draw(st.integers(0, len(values) - 1))
        assert characteristic_subset(values, index, delta) \
            == _subset_scalar(values, index, delta)


class TestAverageKeySmallRanges:
    @settings(max_examples=100, deadline=None)
    @given(st.integers(0, 2**32 - 1), st.integers(1, 20))
    def test_sequential_sum_matches_numpy_mean(self, seed, n):
        """The n<8 fast path must key exactly like np.mean did."""
        rng = np.random.default_rng(seed)
        values = rng.uniform(-0.5, 0.5, n)
        quantizer = Quantizer(32, 8)
        reference = int(np.floor((float(np.mean(values)) + 0.5)
                                 * 2.0 ** 40))
        reference = min(max(reference, 0), (1 << 40) - 1)
        assert quantizer.average_key(values) == reference


class TestWindowRingBuffer:
    @settings(max_examples=100, deadline=None)
    @given(st.lists(st.floats(-1, 1, allow_nan=False), min_size=1,
                    max_size=300),
           st.integers(2, 16), st.data())
    def test_matches_deque_model(self, values, capacity, data):
        """Random push_chunk/advance/replace interleavings match a deque."""
        window = SlidingWindow(capacity)
        model: deque = deque()
        model_start = 0
        i = 0
        while i < len(values):
            step = data.draw(st.integers(1, 8))
            chunk = values[i:i + step]
            i += step
            evicted = window.push_chunk(np.asarray(chunk)).tolist()
            model_evicted = []
            for value in chunk:
                if len(model) >= capacity:
                    model_evicted.append(model.popleft())
                    model_start += 1
                model.append(float(value))
            assert evicted == model_evicted
            if data.draw(st.booleans()):
                n_advance = data.draw(st.integers(0, 4))
                got = window.advance(n_advance)
                want = [model.popleft()
                        for _ in range(min(n_advance, len(model)))]
                model_start += len(want)
                assert got == want
            if model and data.draw(st.booleans()):
                offset = data.draw(st.integers(0, len(model) - 1))
                replacement = data.draw(
                    st.floats(-1, 1, allow_nan=False))
                window.replace(offset, replacement)
                model[offset] = float(replacement)
            assert window.values().tolist() == list(model)
            assert window.start_index == model_start
        assert window.flush() == list(model)


# ----------------------------------------------------------------------
# end-to-end: recorded seed digests and batch-boundary checkpointing
# ----------------------------------------------------------------------
def _reference_streams():
    rng = np.random.default_rng(2026)
    out = {}
    out["random"] = rng.uniform(-0.45, 0.45, 3000)
    t = np.linspace(0, 40 * np.pi, 3000)
    out["noisy"] = 0.3 * np.sin(t) + rng.normal(0, 0.03, 3000)
    out["plateau"] = np.round(
        0.35 * np.sin(np.linspace(0, 24 * np.pi, 3000)) * 20) / 20.0
    return {k: np.clip(v, -0.499, 0.499) for k, v in out.items()}


def _reference_configs():
    return {
        "default-multihash": dict(params=WatermarkParams(phi=5),
                                  encoding="multihash"),
        "initial": dict(params=WatermarkParams(phi=5), encoding="initial"),
        "raw-extreme": dict(params=WatermarkParams(
            phi=5, robust_extreme_value=False, recenter_extremes=False),
            encoding="initial"),
        "small-window": dict(params=WatermarkParams(
            phi=5, window_size=256, lambda_bits=8, skip=1),
            encoding="multihash"),
    }


@pytest.fixture(scope="module")
def seed_reference():
    with open(FIXTURES / "seed_scan_reference.json") as handle:
        return json.load(handle)


class TestSeedDigests:
    """Embed/detect outputs recorded at the seed revision still hold."""

    @pytest.mark.parametrize("stream_name",
                             ["random", "noisy", "plateau"])
    def test_embed_detect_digests(self, seed_reference, stream_name):
        stream = _reference_streams()[stream_name]
        for config_name, config in _reference_configs().items():
            marked, report = watermark_stream(
                stream, "10", b"ref-key", params=config["params"],
                encoding=config["encoding"])
            detection = detect_watermark(
                marked, 2, b"ref-key", params=config["params"],
                encoding=config["encoding"])
            expected = seed_reference["embed"][
                f"{stream_name}/{config_name}"]
            assert hashlib.sha256(marked.tobytes()).hexdigest() \
                == expected["marked_sha256"], config_name
            assert [detection.bias(i) for i in range(2)] \
                == expected["bias"], config_name
            assert report.counters.to_dict() == expected["counters"]

    @pytest.mark.parametrize("stream_name",
                             ["random", "noisy", "plateau"])
    def test_zigzag_digests(self, seed_reference, stream_name):
        stream = _reference_streams()[stream_name]
        pivots, state = zigzag_pivots(stream, 0.05)
        expected = seed_reference["zigzag"][stream_name]
        digest = hashlib.sha256(json.dumps(pivots).encode()).hexdigest()
        assert digest == expected["pivots_sha256"]
        assert len(pivots) == expected["n_pivots"]
        assert state.to_state() == expected["end_state"]


class TestBatchBoundaryCheckpoint:
    """Checkpoint-resume exactly at an ingestion sub-batch boundary."""

    def test_protection_resume_at_batch_boundary(self):
        params = WatermarkParams(phi=5)
        batch = max(16, params.window_size // 4)
        stream = _reference_streams()["noisy"]
        offline, _ = watermark_stream(stream, "10", b"bb-key",
                                      params=params)

        session = ProtectionSession("10", b"bb-key", params=params)
        pieces = [session.feed(stream[:2 * batch])]
        state = json.loads(json.dumps(session.to_state()))
        resumed = ProtectionSession.from_state(state, b"bb-key")
        pieces.append(resumed.feed(stream[2 * batch:]))
        pieces.append(resumed.finish())
        assert np.array_equal(np.concatenate(pieces), offline)

    def test_detection_resume_at_batch_boundary(self):
        params = WatermarkParams(phi=5)
        batch = max(16, params.window_size // 4)
        stream = _reference_streams()["noisy"]
        marked, _ = watermark_stream(stream, "10", b"bb-key", params=params)
        offline = detect_watermark(marked, 2, b"bb-key", params=params)

        session = DetectionSession(2, b"bb-key", params=params)
        session.feed(marked[:2 * batch])
        state = json.loads(json.dumps(session.to_state()))
        resumed = DetectionSession.from_state(state, b"bb-key")
        resumed.feed(marked[2 * batch:])
        resumed.finish()
        result = resumed.result()
        for bit in range(2):
            assert result.bias(bit) == offline.bias(bit)
            assert result.votes(bit) == offline.votes(bit)
