"""Hypothesis property tests on end-to-end pipeline invariants.

These are the guarantees a downstream user relies on regardless of
parameters, keys or data: embedding changes nothing but low bits, output
length equals input length, chunking never changes results, detection is
deterministic, the embedded bit — not its complement — is what detection
recovers, and a multi-tenant :class:`repro.StreamHub` killed at *any*
batch boundary recovers from its directory store bit-identically.
"""

from __future__ import annotations

import tempfile

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import (
    StreamHub,
    WatermarkParams,
    detect_watermark,
    watermark_stream,
)
from repro.stores import DirectoryCheckpointStore
from repro.streams.generators import TemperatureSensorGenerator

KEY_STRATEGY = st.binary(min_size=1, max_size=24)
SEED_STRATEGY = st.integers(0, 2**31)

#: Fast parameters for property runs: small stream, cheap search.
FAST_PARAMS = WatermarkParams(active_run_length=2, max_subset_embed=6,
                              lambda_bits=6, skip=1)

slow_settings = settings(max_examples=10, deadline=None,
                         suppress_health_check=[HealthCheck.too_slow])


def make_stream(seed: int, n: int = 3000) -> np.ndarray:
    return TemperatureSensorGenerator(eta=60, seed=seed).generate(n)


class TestEmbeddingInvariants:
    @slow_settings
    @given(seed=SEED_STRATEGY, key=KEY_STRATEGY)
    def test_length_preserved(self, seed, key):
        stream = make_stream(seed)
        marked, _ = watermark_stream(stream, "1", key, params=FAST_PARAMS)
        assert marked.shape == stream.shape

    @slow_settings
    @given(seed=SEED_STRATEGY, key=KEY_STRATEGY)
    def test_alterations_bounded_by_lsb_budget(self, seed, key):
        stream = make_stream(seed)
        marked, _ = watermark_stream(stream, "1", key, params=FAST_PARAMS)
        assert np.max(np.abs(marked - stream)) <= FAST_PARAMS.max_alteration

    @slow_settings
    @given(seed=SEED_STRATEGY, key=KEY_STRATEGY,
           bit=st.sampled_from(["0", "1"]))
    def test_embedded_bit_recovered_not_complement(self, seed, key, bit):
        stream = make_stream(seed)
        marked, report = watermark_stream(stream, bit, key,
                                          params=FAST_PARAMS)
        if report.embedded < 8:
            return  # too few carriers for a meaningful verdict
        result = detect_watermark(marked, 1, key, params=FAST_PARAMS)
        expected_sign = 1 if bit == "1" else -1
        assert result.bias(0) * expected_sign > 0

    @slow_settings
    @given(seed=SEED_STRATEGY, key=KEY_STRATEGY,
           chunk=st.sampled_from([173, 900, 5000]))
    def test_chunking_never_changes_output(self, seed, key, chunk):
        stream = make_stream(seed)
        a, _ = watermark_stream(stream, "1", key, params=FAST_PARAMS,
                                chunk_size=chunk)
        b, _ = watermark_stream(stream, "1", key, params=FAST_PARAMS,
                                chunk_size=1024)
        assert np.array_equal(a, b)

    @slow_settings
    @given(seed=SEED_STRATEGY)
    def test_different_keys_produce_different_marks(self, seed):
        stream = make_stream(seed)
        a, ra = watermark_stream(stream, "1", b"key-one",
                                 params=FAST_PARAMS)
        b, rb = watermark_stream(stream, "1", b"key-two",
                                 params=FAST_PARAMS)
        if ra.embedded and rb.embedded:
            assert not np.array_equal(a, b)

    @slow_settings
    @given(seed=SEED_STRATEGY, key=KEY_STRATEGY)
    def test_embedding_deterministic(self, seed, key):
        stream = make_stream(seed)
        a, _ = watermark_stream(stream, "1", key, params=FAST_PARAMS)
        b, _ = watermark_stream(stream, "1", key, params=FAST_PARAMS)
        assert np.array_equal(a, b)


class TestDetectionInvariants:
    @slow_settings
    @given(seed=SEED_STRATEGY, key=KEY_STRATEGY)
    def test_detection_deterministic(self, seed, key):
        stream = make_stream(seed)
        marked, _ = watermark_stream(stream, "1", key, params=FAST_PARAMS)
        r1 = detect_watermark(marked, 1, key, params=FAST_PARAMS)
        r2 = detect_watermark(marked, 1, key, params=FAST_PARAMS)
        assert r1.buckets_true == r2.buckets_true
        assert r1.buckets_false == r2.buckets_false

    @slow_settings
    @given(seed=SEED_STRATEGY, key=KEY_STRATEGY)
    def test_buckets_bounded_by_selected(self, seed, key):
        stream = make_stream(seed)
        marked, _ = watermark_stream(stream, "1", key, params=FAST_PARAMS)
        result = detect_watermark(marked, 1, key, params=FAST_PARAMS)
        total_votes = result.votes(0) + result.abstentions
        assert total_votes <= result.counters.selected

    @slow_settings
    @given(seed=SEED_STRATEGY, key=KEY_STRATEGY,
           threshold=st.integers(0, 30))
    def test_higher_threshold_never_decides_more(self, seed, key,
                                                 threshold):
        stream = make_stream(seed)
        marked, _ = watermark_stream(stream, "1", key, params=FAST_PARAMS)
        result = detect_watermark(marked, 1, key, params=FAST_PARAMS)
        decided_low = sum(b is not None for b in result.wm_estimate(0))
        decided_high = sum(b is not None
                           for b in result.wm_estimate(threshold))
        assert decided_high <= decided_low

    @slow_settings
    @given(seed=SEED_STRATEGY)
    def test_confidence_consistent_with_bias(self, seed):
        stream = make_stream(seed)
        marked, _ = watermark_stream(stream, "1", b"prop-key",
                                     params=FAST_PARAMS)
        result = detect_watermark(marked, 1, b"prop-key",
                                  params=FAST_PARAMS)
        bias = result.bias(0)
        confidence = result.confidence(0)
        if bias <= 0:
            assert confidence == 0.0
        else:
            assert confidence == pytest.approx(1.0 - 2.0 ** -bias)


class TestHubKillRecover:
    """Hub-level crash equivalence: for random interleavings of pushes
    across N independently-keyed streams and a random kill point at any
    batch boundary, recovery from the directory store produces the same
    output bits and detector votes as an uninterrupted run."""

    #: phi must exceed the 2-bit payload (paper Sec 3.2).
    HUB_PARAMS = WatermarkParams(active_run_length=2, max_subset_embed=6,
                                 lambda_bits=6, skip=1, phi=4)
    WATERMARK = "10"

    @staticmethod
    def _key(stream_id: str) -> bytes:
        return f"hub-prop-{stream_id}".encode()

    def _build_hub(self, streams, store=None, checkpoint_every=0):
        hub = StreamHub(store=store, checkpoint_every=checkpoint_every)
        for stream_id in streams:
            if stream_id.startswith("det"):
                hub.detect(stream_id, len(self.WATERMARK),
                           self._key(stream_id), params=self.HUB_PARAMS)
            else:
                hub.protect(stream_id, self.WATERMARK,
                            self._key(stream_id), params=self.HUB_PARAMS)
        return hub

    def _run(self, hub, batches, start=0):
        """Feed batches[start:], finish, return (outputs, votes)."""
        outputs = {}
        for stream_id, chunk in batches[start:]:
            out = hub.push(stream_id, chunk)
            outputs.setdefault(stream_id, []).append(out)
        for stream_id, tail in hub.finish_all().items():
            outputs.setdefault(stream_id, []).append(tail)
        votes = {stream_id: [(hub.result(stream_id).votes(i),
                              hub.result(stream_id).bias(i))
                             for i in range(len(self.WATERMARK))]
                 for stream_id in hub.stream_ids
                 if stream_id.startswith("det")}
        return ({stream_id: np.concatenate(pieces)
                 for stream_id, pieces in outputs.items()}, votes)

    @slow_settings
    @given(data=st.data())
    def test_kill_and_recover_bit_identical(self, data):
        n_streams = data.draw(st.integers(2, 3), label="n_streams")
        with_detector = data.draw(st.booleans(), label="with_detector")
        seeds = [data.draw(SEED_STRATEGY, label=f"seed{i}")
                 for i in range(n_streams + with_detector)]

        streams = {f"prot-{i}": make_stream(seeds[i], n=1200)
                   for i in range(n_streams)}
        if with_detector:
            # the detector watches a marked copy of an unrelated stream
            suspect = make_stream(seeds[-1], n=1200)
            streams["det-0"], _ = watermark_stream(
                suspect, self.WATERMARK, self._key("det-0"),
                params=self.HUB_PARAMS)

        # random interleaving that preserves per-stream chunk order
        chunk = data.draw(st.sampled_from([150, 250, 400]), label="chunk")
        cursors = {stream_id: 0 for stream_id in streams}
        batches = []
        while cursors:
            stream_id = data.draw(
                st.sampled_from(sorted(cursors)), label="next")
            start = cursors[stream_id]
            batches.append(
                (stream_id, streams[stream_id][start:start + chunk]))
            cursors[stream_id] += chunk
            if cursors[stream_id] >= len(streams[stream_id]):
                del cursors[stream_id]

        reference, ref_votes = self._run(self._build_hub(streams), batches)

        kill_at = data.draw(st.integers(0, len(batches)), label="kill_at")
        with tempfile.TemporaryDirectory() as tmp:
            store = DirectoryCheckpointStore(tmp)
            doomed = self._build_hub(streams, store=store,
                                     checkpoint_every=1)
            doomed.checkpoint_all()  # pristine state is durable too
            prefix = {}
            for stream_id, chunk_values in batches[:kill_at]:
                out = doomed.push(stream_id, chunk_values)
                prefix.setdefault(stream_id, []).append(out)
            del doomed  # the crash: only the store survives

            recovered = StreamHub.recover(
                store, self._key, checkpoint_every=1)
            # cadence 1 + kill at a batch boundary: nothing to replay
            for stream_id in streams:
                fed = sum(len(c) for sid, c in batches[:kill_at]
                          if sid == stream_id)
                assert recovered.stats(stream_id)["items_in"] == fed
            suffix, rec_votes = self._run(recovered, batches,
                                          start=kill_at)

        for stream_id in streams:
            pieces = prefix.get(stream_id, []) \
                + [suffix.get(stream_id, np.empty(0))]
            assert np.array_equal(np.concatenate(pieces),
                                  reference[stream_id]), stream_id
        assert rec_votes == ref_votes


class TestTransformCommutation:
    @slow_settings
    @given(seed=SEED_STRATEGY, degree=st.integers(2, 5))
    def test_fixed_sampling_of_marked_equals_marked_subsequence(self, seed,
                                                                degree):
        """Fixed sampling is pure decimation: the surviving values are
        bit-identical to the embedder's output at those positions."""
        from repro.transforms.sampling import fixed_random_sampling

        stream = make_stream(seed)
        marked, _ = watermark_stream(stream, "1", b"k", params=FAST_PARAMS)
        sampled = fixed_random_sampling(marked, degree)
        assert np.array_equal(sampled, marked[::degree])

    @slow_settings
    @given(seed=SEED_STRATEGY, degree=st.integers(2, 4))
    def test_summarized_values_are_chunk_means_of_marked(self, seed,
                                                         degree):
        from repro.transforms.summarization import summarize

        stream = make_stream(seed)
        marked, _ = watermark_stream(stream, "1", b"k", params=FAST_PARAMS)
        out = summarize(marked, degree, keep_partial=False)
        n = (len(marked) // degree) * degree
        expected = marked[:n].reshape(-1, degree).mean(axis=1)
        assert np.array_equal(out, expected)
