"""Shared fixtures and hypothesis profiles.

Embedding is the expensive operation, so watermarked reference streams
are produced once per session and shared read-only; tests that need to
mutate data copy first.

Two hypothesis profiles are registered here:

* ``default`` — the library's normal interactive profile;
* ``ci`` — the pinned CI profile: **derandomized** (every CI run
  explores the same examples, so failures reproduce) with a higher
  example count for tests that do not set their own.

Select with ``HYPOTHESIS_PROFILE=ci pytest ...`` (the GitHub Actions
workflow does).
"""

from __future__ import annotations

import os

import numpy as np
import pytest
from hypothesis import HealthCheck, settings

from repro import WatermarkParams, watermark_stream
from repro.streams import GaussianStream, TemperatureSensorGenerator

settings.register_profile(
    "ci",
    derandomize=True,
    max_examples=50,
    deadline=None,
    print_blob=True,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "default"))

#: Secret key shared by the reference fixtures.
KEY = b"test-key-k1"


@pytest.fixture(scope="session")
def params() -> WatermarkParams:
    """Library-default parameters (the calibrated reference setup)."""
    return WatermarkParams()


@pytest.fixture(scope="session")
def small_stream() -> np.ndarray:
    """A short synthetic stream for cheap unit-level checks."""
    return TemperatureSensorGenerator(eta=60, seed=101).generate(3000)


@pytest.fixture(scope="session")
def reference_stream() -> np.ndarray:
    """The Sec-6-style reference stream: eta ~= 100, ~8000 items."""
    return TemperatureSensorGenerator(eta=100, seed=7).generate(8000)


@pytest.fixture(scope="session")
def marked_reference(reference_stream, params):
    """One-bit watermarked reference stream plus its embed report."""
    marked, report = watermark_stream(reference_stream, watermark="1",
                                      key=KEY, params=params)
    marked.setflags(write=False)
    return marked, report


@pytest.fixture(scope="session")
def random_stream() -> np.ndarray:
    """Unwatermarked i.i.d. data for false-positive checks."""
    return GaussianStream(seed=33).generate(8000)
