"""Acceptance: checkpoint-at-midpoint + resume == uninterrupted run.

A 6000-item stream is fed chunk-by-chunk through a
:class:`ProtectionSession`; at item 3000 the session is serialized to a
JSON string (a real cross-process migration would ship exactly these
bytes) and resumed in a fresh session object.  The watermarked output
and the final per-bit detection bias must be *identical* to the
uninterrupted offline ``watermark_stream`` / ``detect_watermark`` run.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro import (
    DetectionSession,
    Normalizer,
    Pipeline,
    ProtectionSession,
    TransformStage,
    WatermarkParams,
    detect_watermark,
    watermark_stream,
)
from repro.streams import TemperatureSensorGenerator
from tests.conftest import KEY

CHUNK = 250
CHECKPOINT_AT = 3000
WATERMARK = "10"  # two bits, so per-bit bias is actually exercised


@pytest.fixture(scope="module")
def stream() -> np.ndarray:
    return TemperatureSensorGenerator(eta=60, seed=7).generate(6000)


@pytest.fixture(scope="module")
def session_params() -> WatermarkParams:
    # phi must exceed the payload length (paper Sec 3.2).
    return WatermarkParams(phi=5)


def feed_chunks(session, values: np.ndarray, start: int, end: int) -> list:
    return [session.feed(values[i:i + CHUNK])
            for i in range(start, end, CHUNK)]


class TestCheckpointResume:
    def test_protection_session_checkpoint_matches_offline(
            self, stream, session_params):
        offline_marked, _ = watermark_stream(stream, WATERMARK, KEY,
                                             params=session_params)

        session = ProtectionSession(WATERMARK, KEY, params=session_params)
        pieces = feed_chunks(session, stream, 0, CHECKPOINT_AT)
        assert session.items_ingested == CHECKPOINT_AT
        wire_bytes = json.dumps(session.to_state())

        resumed = ProtectionSession.from_state(json.loads(wire_bytes), KEY)
        pieces += feed_chunks(resumed, stream, CHECKPOINT_AT, len(stream))
        pieces.append(resumed.finish())
        streamed_marked = np.concatenate(pieces)

        assert len(streamed_marked) == len(stream)
        assert np.array_equal(streamed_marked, offline_marked)

    def test_detection_session_checkpoint_bias_identical(
            self, stream, session_params):
        marked, _ = watermark_stream(stream, WATERMARK, KEY,
                                     params=session_params)
        offline = detect_watermark(marked, len(WATERMARK), KEY,
                                   params=session_params)

        session = DetectionSession(len(WATERMARK), KEY,
                                   params=session_params)
        feed_chunks(session, marked, 0, CHECKPOINT_AT)
        wire_bytes = json.dumps(session.to_state())

        resumed = DetectionSession.from_state(json.loads(wire_bytes), KEY)
        feed_chunks(resumed, marked, CHECKPOINT_AT, len(marked))
        resumed.finish()
        result = resumed.result()

        assert result.wm_length == offline.wm_length
        for bit in range(offline.wm_length):
            assert result.bias(bit) == offline.bias(bit)
            assert result.votes(bit) == offline.votes(bit)
        assert result.wm_estimate() == offline.wm_estimate()
        assert offline.bias(0) > 0  # the run itself must be decisive

    def test_resume_is_restartable_at_any_chunk(self, stream,
                                                session_params):
        """Checkpoint/resume at *every* chunk boundary stays exact."""
        offline_marked, _ = watermark_stream(stream, WATERMARK, KEY,
                                             params=session_params)
        session = ProtectionSession(WATERMARK, KEY, params=session_params)
        pieces = []
        for i in range(0, len(stream), CHUNK):
            pieces.append(session.feed(stream[i:i + CHUNK]))
            session = ProtectionSession.from_state(
                json.loads(json.dumps(session.to_state())), KEY)
        pieces.append(session.finish())
        assert np.array_equal(np.concatenate(pieces), offline_marked)


class TestPipeline:
    def test_normalize_protect_pipeline_matches_manual(self, stream,
                                                       session_params):
        """Physical-unit chunks through [Normalizer -> ProtectionSession]
        equal normalize-then-watermark done by hand."""
        celsius = 17.5 + 10.0 * stream
        normalizer = Normalizer(low=10.0, high=25.0)
        expected, _ = watermark_stream(normalizer.normalize(celsius),
                                       WATERMARK, KEY,
                                       params=session_params)

        pipeline = Pipeline([normalizer,
                             ProtectionSession(WATERMARK, KEY,
                                               params=session_params)])
        out = pipeline.run(celsius, chunk_size=CHUNK)
        assert np.array_equal(out, expected)

    def test_pipeline_with_transform_and_detector_collects_votes(
            self, stream, session_params):
        """An end-to-end adversarial chain: protect -> summarize ->
        detect, all streaming, votes accumulate toward the payload."""
        protect = ProtectionSession(WATERMARK, KEY, params=session_params)
        detect = DetectionSession(len(WATERMARK), KEY,
                                  params=session_params,
                                  transform_degree=2.0)
        pipeline = Pipeline([protect,
                             TransformStage("summarize", degree=2),
                             detect])
        out = pipeline.run(stream, chunk_size=1000)
        assert len(out) > 0
        result = detect.result()
        assert result.bias(0) > 0

    def test_stage_names_are_reportable(self, session_params):
        pipeline = Pipeline([Normalizer(low=0.0, high=1.0),
                             TransformStage("sample", degree=2, rng=0),
                             ProtectionSession("1", KEY,
                                               params=session_params)])
        assert pipeline.stage_names == ["normalize", "sample",
                                        "ProtectionSession"]
