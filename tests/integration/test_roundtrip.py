"""End-to-end embed -> detect round trips across encodings."""

from __future__ import annotations

import numpy as np
import pytest

from repro import detect_watermark, watermark_stream
from repro.core.confidence import confidence_from_bias
from tests.conftest import KEY


class TestOneBitRoundtrip:
    def test_multihash_detects_with_high_confidence(self, marked_reference,
                                                    params):
        marked, report = marked_reference
        result = detect_watermark(marked, 1, KEY, params=params)
        assert result.bias(0) >= 30
        assert result.confidence(0) > 0.999999
        assert result.exact_false_positive(0) < 1e-6
        assert result.wm_estimate() == [True]

    @pytest.mark.parametrize("encoding", ["initial", "quadres"])
    def test_alternative_encodings_roundtrip(self, reference_stream, params,
                                             encoding):
        marked, _ = watermark_stream(reference_stream, "1", KEY,
                                     params=params, encoding=encoding)
        result = detect_watermark(marked, 1, KEY, params=params,
                                  encoding=encoding)
        assert result.bias(0) >= 25
        assert result.wm_estimate() == [True]

    def test_zero_bit_watermark(self, reference_stream, params):
        marked, _ = watermark_stream(reference_stream, "0", KEY,
                                     params=params)
        result = detect_watermark(marked, 1, KEY, params=params)
        assert result.bias(0) <= -25
        assert result.wm_estimate() == [False]

    def test_wrong_key_detects_nothing(self, marked_reference, params):
        marked, _ = marked_reference
        result = detect_watermark(marked, 1, b"not-the-key", params=params)
        assert abs(result.bias(0)) <= 12
        assert result.exact_false_positive(0) > 1e-4

    def test_unwatermarked_data_detects_nothing(self, random_stream, params):
        result = detect_watermark(random_stream, 1, KEY, params=params)
        assert abs(result.bias(0)) <= 14

    def test_embedding_preserves_stream_closely(self, reference_stream,
                                                marked_reference, params):
        marked, report = marked_reference
        assert marked.shape == reference_stream.shape
        max_change = np.max(np.abs(marked - reference_stream))
        assert max_change <= params.max_alteration
        assert report.embedded > 0
        assert report.search_failures == 0

    def test_report_summary_keys(self, marked_reference):
        _, report = marked_reference
        summary = report.summary()
        for key in ("items", "extremes", "majors", "selected", "embedded",
                    "eta_estimate", "average_subset_size"):
            assert key in summary

    def test_confidence_rule_consistency(self, marked_reference, params):
        marked, _ = marked_reference
        result = detect_watermark(marked, 1, KEY, params=params)
        assert result.confidence(0) == pytest.approx(
            confidence_from_bias(result.bias(0)))


class TestMultibitRoundtrip:
    def test_ascii_payload_recovered(self, params):
        from repro import bits_to_text
        from repro.streams import TemperatureSensorGenerator

        payload = "VLDB"
        wm_bits = len(payload) * 8
        stream = TemperatureSensorGenerator(eta=60, seed=77).generate(30000)
        p = params.with_updates(phi=wm_bits + 1)
        marked, _ = watermark_stream(stream, payload, KEY, params=p)
        result = detect_watermark(marked, wm_bits, KEY, params=p)
        assert result.match_fraction(payload) == 1.0
        assert bits_to_text(result.wm_estimate()) == payload

    def test_undecided_bits_reported_as_none(self, small_stream, params):
        # Far too little data for 32 bits: most bits must stay undefined
        # rather than being guessed.
        p = params.with_updates(phi=33)
        marked, _ = watermark_stream(small_stream, "ABCD", KEY, params=p)
        result = detect_watermark(marked[:800], 32, KEY, params=p)
        estimate = result.wm_estimate()
        assert sum(1 for b in estimate if b is None) >= 16
