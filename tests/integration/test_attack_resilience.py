"""Resilience to Mallory's attacks (paper Secs 4.1, 4.3, 5, 6.1)."""

from __future__ import annotations

import numpy as np
import pytest

from repro import detect_watermark, watermark_stream
from repro.attacks.additive import additive_attack
from repro.attacks.bias_detection import bias_detection_attack
from repro.attacks.correlation import correlation_attack
from repro.attacks.epsilon import epsilon_attack
from repro.attacks.extreme_attack import targeted_extreme_attack
from tests.conftest import KEY


class TestEpsilonAttacks:
    def test_mild_attack_survived(self, marked_reference, params):
        marked, _ = marked_reference
        attacked = epsilon_attack(marked, tau=0.1, epsilon=0.1, rng=1)
        result = detect_watermark(attacked, 1, KEY, params=params)
        assert result.bias(0) >= 25

    def test_paper_headline_tau50_eps10(self, marked_reference, params):
        """Fig 7(b): half the data altered within 10% still detects."""
        marked, _ = marked_reference
        attacked = epsilon_attack(marked, tau=0.5, epsilon=0.1, rng=1)
        result = detect_watermark(attacked, 1, KEY, params=params)
        assert result.bias(0) >= 8
        assert result.confidence(0) > 0.99

    def test_bias_decreases_with_severity(self, marked_reference, params):
        """Fig 7(a)'s monotone decay over (tau, epsilon)."""
        marked, _ = marked_reference
        biases = []
        for tau, eps in [(0.0, 0.0), (0.2, 0.1), (0.6, 0.3)]:
            if tau == 0.0:
                attacked = marked
            else:
                attacked = epsilon_attack(marked, tau=tau, epsilon=eps,
                                          rng=1)
            biases.append(detect_watermark(attacked, 1, KEY,
                                           params=params).bias(0))
        assert biases[0] > biases[1] > biases[2]


class TestAdditiveAttack:
    def test_insertion_survived(self, marked_reference, params):
        marked, _ = marked_reference
        attacked = additive_attack(marked, fraction=0.1, rng=5)
        result = detect_watermark(attacked, 1, KEY, params=params)
        assert result.bias(0) >= 15


class TestTargetedExtremeAttack:
    def test_sec5_attack_only_weakens(self, marked_reference, params):
        """a1=5, a2=50%: the analysis predicts mild weakening, not loss."""
        marked, _ = marked_reference
        clean_bias = detect_watermark(marked, 1, KEY, params=params).bias(0)
        attacked, report = targeted_extreme_attack(marked, a1=5, a2=0.5,
                                                   rng=11)
        assert report.extremes_attacked > 0
        result = detect_watermark(attacked, 1, KEY, params=params)
        assert result.bias(0) >= clean_bias * 0.4


class TestCorrelationAblation:
    """Sec 4.1: bucket counting breaks value-derived positions, not
    label-derived ones.  This is the paper's central design argument.

    The statistics need volume: Mallory's per-bucket bit frequencies
    separate cleanly once buckets hold tens of extremes, so the ablation
    runs on a longer stream than the other fixtures.
    """

    #: Mallory's settings: enough bucket volume for clean statistics.
    ATTACK = dict(beta_guess=5, alpha_guess=16, rng=7, prominence=0.05,
                  delta=0.02, bias_threshold=0.25, min_bucket=10)
    #: Detection settings for the pure Sec-3.2 scheme.
    INITIAL = dict(encoding="initial", require_labels=False,
                   encoding_options={"use_label_positions": False})

    @pytest.fixture(scope="class")
    def long_stream(self):
        from repro.streams import TemperatureSensorGenerator

        return TemperatureSensorGenerator(eta=100, seed=7).generate(30000)

    @pytest.fixture(scope="class")
    def vulnerable_marked(self, long_stream, params):
        marked, _ = watermark_stream(long_stream, "1", KEY, params=params,
                                     **self.INITIAL)
        return marked

    @pytest.fixture(scope="class")
    def multihash_marked(self, long_stream, params):
        marked, _ = watermark_stream(long_stream, "1", KEY, params=params)
        return marked

    def test_initial_scheme_leaks_locations(self, long_stream,
                                            vulnerable_marked,
                                            multihash_marked):
        """Flag counts: initial >> clean ~ multihash.

        The attack reveals mark-carrying positions in the value-derived
        scheme, while the labeled multi-hash stream is statistically
        indistinguishable from unwatermarked data.
        """
        _, on_clean = correlation_attack(long_stream.copy(), **self.ATTACK)
        _, on_initial = correlation_attack(vulnerable_marked.copy(),
                                           **self.ATTACK)
        _, on_multihash = correlation_attack(multihash_marked.copy(),
                                             **self.ATTACK)
        assert on_initial.positions_found >= \
            3 * max(1, on_clean.positions_found)
        assert on_multihash.positions_found <= \
            2 * max(2, on_clean.positions_found)

    def test_attack_destroys_initial_scheme(self, vulnerable_marked,
                                            params):
        clean = detect_watermark(vulnerable_marked, 1, KEY, params=params,
                                 **self.INITIAL)
        attacked, _ = correlation_attack(vulnerable_marked.copy(),
                                         **self.ATTACK)
        broken = detect_watermark(attacked, 1, KEY, params=params,
                                  **self.INITIAL)
        assert clean.bias(0) >= 100
        assert broken.bias(0) <= clean.bias(0) * 0.6

    def test_labeled_multihash_resists_attack(self, multihash_marked,
                                              params):
        attacked, _ = correlation_attack(multihash_marked.copy(),
                                         **self.ATTACK)
        clean_bias = detect_watermark(multihash_marked, 1, KEY,
                                      params=params).bias(0)
        after_bias = detect_watermark(attacked, 1, KEY,
                                      params=params).bias(0)
        # Nothing is flagged beyond noise, so next to nothing is damaged.
        assert after_bias >= clean_bias * 0.75


class TestBiasDetectionAblation:
    """Sec 4.3: subset-consistency scanning breaks the guarded-bit
    encoding; the multi-hash encoding leaves nothing to find."""

    def test_initial_encoding_fingerprint_found(self, reference_stream,
                                                params):
        marked, _ = watermark_stream(reference_stream, "1", KEY,
                                     params=params, encoding="initial")
        attacked, report = bias_detection_attack(
            marked, alpha_guess=params.lsb_bits, rng=9,
            prominence=params.prominence, delta=params.delta)
        assert report.flagged_extremes > 0
        clean = detect_watermark(marked, 1, KEY, params=params,
                                 encoding="initial")
        broken = detect_watermark(attacked, 1, KEY, params=params,
                                  encoding="initial")
        assert broken.bias(0) <= clean.bias(0) * 0.6

    def test_multihash_leaves_no_fingerprint(self, marked_reference,
                                             params):
        marked, _ = marked_reference
        _, report = bias_detection_attack(
            marked, alpha_guess=params.lsb_bits, rng=9,
            prominence=params.prominence, delta=params.delta)
        # Hash-targeted alterations are indistinguishable from noise: the
        # unanimity+guard fingerprint must be (near) absent.
        assert report.flagged_extremes <= 2


class TestNullHypothesis:
    """False positives: unwatermarked and wrong-key data stay undecided."""

    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_random_streams_low_bias(self, params, seed):
        from repro.streams import GaussianStream

        data = GaussianStream(seed=seed).generate(8000)
        result = detect_watermark(data, 1, KEY, params=params)
        fp = result.exact_false_positive(0)
        # Exact binomial tail must not be extreme on null data.
        assert fp > 1e-4 or result.votes(0) == 0

    def test_threshold_marks_null_undefined(self, random_stream, params):
        result = detect_watermark(random_stream, 1, KEY, params=params)
        estimate = result.wm_estimate(threshold=15)
        assert estimate == [None]
