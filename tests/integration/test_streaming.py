"""Single-pass streaming properties: chunking invariance, window bounds."""

from __future__ import annotations

import numpy as np
import pytest

from repro import StreamDetector, StreamWatermarker, watermark_stream
from repro.core.quality import MaxPerItemChange, QualityMonitor
from tests.conftest import KEY


class TestChunkingInvariance:
    @pytest.mark.parametrize("chunk_size", [97, 512, 4096])
    def test_embedding_independent_of_chunking(self, reference_stream,
                                               params, chunk_size):
        """The watermarked stream must not depend on ingestion chunking."""
        baseline, _ = watermark_stream(reference_stream, "1", KEY,
                                       params=params, chunk_size=1024)
        chunked, _ = watermark_stream(reference_stream, "1", KEY,
                                      params=params, chunk_size=chunk_size)
        assert np.array_equal(baseline, chunked)

    def test_streaming_api_matches_offline(self, reference_stream, params):
        embedder = StreamWatermarker("1", KEY, params=params)
        pieces = []
        for start in range(0, len(reference_stream), 333):
            pieces.append(embedder.process(reference_stream[start:start + 333]))
        pieces.append(embedder.finalize())
        streamed = np.concatenate(pieces)
        offline, _ = watermark_stream(reference_stream, "1", KEY,
                                      params=params)
        assert np.array_equal(streamed, offline)

    def test_detection_independent_of_chunking(self, marked_reference,
                                               params):
        marked, _ = marked_reference
        results = []
        for chunk_size in (101, 1024):
            detector = StreamDetector(1, KEY, params=params)
            detector.run(marked, chunk_size=chunk_size)
            results.append(detector.result())
        assert results[0].buckets_true == results[1].buckets_true
        assert results[0].buckets_false == results[1].buckets_false


class TestWindowDiscipline:
    def test_output_length_equals_input(self, reference_stream, params):
        embedder = StreamWatermarker("1", KEY, params=params)
        out = embedder.run(reference_stream)
        assert len(out) == len(reference_stream)

    def test_small_window_reports_missed_extremes(self, params):
        """An undersized window degrades loudly, not silently."""
        from repro.streams import TemperatureSensorGenerator

        # eta = 600: pivot confirmation lags far beyond a 64-item window.
        slow = TemperatureSensorGenerator(eta=600, seed=5).generate(6000)
        tight = params.with_updates(window_size=64)
        embedder = StreamWatermarker("1", KEY, params=tight)
        embedder.run(slow)
        assert embedder.report.counters.missed_evictions > 0

    def test_incremental_results_accumulate(self, marked_reference, params):
        marked, _ = marked_reference
        detector = StreamDetector(1, KEY, params=params)
        detector.process(marked[:4000])
        early = detector.result().votes(0)
        detector.process(marked[4000:])
        detector.finalize()
        late = detector.result().votes(0)
        assert late >= early
        assert late > 0


class TestQualityIntegration:
    def test_draconian_constraint_rolls_back_everything(self,
                                                        reference_stream,
                                                        params):
        monitor = QualityMonitor([MaxPerItemChange(limit=1e-12)])
        marked, report = watermark_stream(reference_stream, "1", KEY,
                                          params=params, monitor=monitor)
        assert report.quality_rollbacks > 0
        assert report.altered_items == 0
        assert np.array_equal(marked, reference_stream)

    def test_loose_constraint_does_not_interfere(self, reference_stream,
                                                 params):
        monitor = QualityMonitor([MaxPerItemChange(limit=0.1)])
        _, report = watermark_stream(reference_stream, "1", KEY,
                                     params=params, monitor=monitor)
        assert report.quality_rollbacks == 0
        assert report.embedded > 0
        assert monitor.stats.n_altered == report.altered_items

    def test_monitor_tracks_drift_within_paper_bounds(self,
                                                      reference_stream,
                                                      params):
        """Sec 6.4: mean/std drift well under 1% of the data scale."""
        monitor = QualityMonitor()
        _, report = watermark_stream(reference_stream, "1", KEY,
                                     params=params, monitor=monitor)
        scale = monitor.stats.std_original()
        assert monitor.stats.mean_drift() < 0.0021 * scale
        assert monitor.stats.std_drift() < 0.0027 * scale
