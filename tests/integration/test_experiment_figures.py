"""Reduced-scale integration runs of the figure experiments.

The benchmarks run these at full scale; here each figure function is
exercised end-to-end at small scale so a regression in any experiment
module fails the ordinary test suite, not just the benchmark pass.
The expensive IRTF embedding is process-cached, so the whole module
costs one embed.
"""

from __future__ import annotations

import pytest

from repro.experiments.fig07_wm_epsilon import run_fig7b
from repro.experiments.fig08_labels_transforms import run_fig8a, run_fig8b
from repro.experiments.fig09_wm_transforms import run_fig9a, run_fig9b
from repro.experiments.fig10_segmentation import run_fig10a, run_fig10b
from repro.experiments.fig11_overhead_quality import run_fig11a
from repro.experiments.sec5_attack_model import run_sec5_attack_model
from repro.experiments.throughput import run_throughput


class TestFigureFunctionsSmallScale:
    def test_fig7b(self):
        result = run_fig7b(scale=0.3)
        assert result.rows[0]["tau"] == 0.0
        assert result.rows[0]["bias"] >= 20

    def test_fig8a(self):
        result = run_fig8a(scale=0.4)
        assert len(result.rows) == 5
        assert all(0 <= r["labels_altered_pct"] <= 100 for r in result.rows)

    def test_fig8b(self):
        result = run_fig8b(scale=0.4)
        assert result.rows[0]["degree"] == 2

    def test_fig9_pair(self):
        summ = run_fig9a(scale=0.3)
        samp = run_fig9b(scale=0.3)
        assert summ.rows[0]["bias"] >= 10
        assert samp.rows[0]["bias"] >= 10

    def test_fig10a(self):
        result = run_fig10a(scale=0.3, placements=1)
        sizes = result.column("segment_size")
        assert sizes == sorted(sizes)

    def test_fig10b_orders_present(self):
        result = run_fig10b(scale=0.3)
        orders = {row["order"] for row in result.rows}
        assert orders == {"sample-then-summarize", "summarize-then-sample"}

    def test_fig11a_exponential_columns(self):
        result = run_fig11a(scale=0.4)
        expected = result.column("expected_random")
        assert expected == sorted(expected)
        assert all(row["measured_pruned"] > 0 for row in result.rows)

    def test_sec5_model(self):
        result = run_sec5_attack_model(scale=0.3)
        for row in result.rows:
            assert 0.0 <= row["predicted_survival"] <= 1.0

    @pytest.mark.slow
    def test_throughput_ordering(self):
        result = run_throughput(scale=0.4)
        rows = {row["configuration"]: row["seconds"] for row in result.rows}
        assert rows["read-and-copy"] < rows["initial"]
