"""Tests for key fingerprinting and payload verification."""

from __future__ import annotations

import pytest

from repro import watermark_stream
from repro.core.identification import identify_key, verify_payload
from repro.errors import ParameterError
from repro.streams.generators import TemperatureSensorGenerator
from repro.transforms.sampling import uniform_random_sampling


@pytest.fixture(scope="module")
def fingerprinted(params):
    """Three customers, three keys, one leak (customer B)."""
    stream = TemperatureSensorGenerator(eta=80, seed=91).generate(8000)
    keys = {"customer-a": b"key-a", "customer-b": b"key-b",
            "customer-c": b"key-c"}
    leak, _ = watermark_stream(stream, "1", keys["customer-b"],
                               params=params)
    return keys, leak


class TestIdentifyKey:
    def test_leaker_ranked_first_and_decisive(self, fingerprinted, params):
        keys, leak = fingerprinted
        verdicts = identify_key(leak, keys, params=params)
        assert verdicts[0].key_id == "customer-b"
        assert verdicts[0].decisive
        for other in verdicts[1:]:
            assert not other.decisive

    def test_identification_survives_sampling(self, fingerprinted, params):
        keys, leak = fingerprinted
        sampled = uniform_random_sampling(leak, 3, rng=0)
        verdicts = identify_key(sampled, keys, params=params,
                                transform_degree=3.0)
        assert verdicts[0].key_id == "customer-b"
        assert verdicts[0].bias > 10

    def test_bonferroni_adjustment(self, fingerprinted, params):
        keys, leak = fingerprinted
        verdicts = identify_key(leak, keys, params=params)
        for v in verdicts:
            assert v.adjusted_false_positive == pytest.approx(
                min(1.0, v.false_positive * len(keys)))

    def test_empty_candidates_rejected(self, fingerprinted, params):
        _, leak = fingerprinted
        with pytest.raises(ParameterError):
            identify_key(leak, {}, params=params)


class TestVerifyPayload:
    def test_present_payload_verified(self, params):
        stream = TemperatureSensorGenerator(eta=60, seed=92).generate(20000)
        p = params.with_updates(phi=17)
        marked, _ = watermark_stream(stream, "AB", b"pv-key", params=p)
        verdict = verify_payload(marked, "AB", b"pv-key", params=p)
        assert verdict.present
        assert verdict.total_bits == 16
        assert verdict.matched_bits == verdict.decided_bits

    def test_wrong_payload_not_verified(self, params):
        stream = TemperatureSensorGenerator(eta=60, seed=92).generate(20000)
        p = params.with_updates(phi=17)
        marked, _ = watermark_stream(stream, "AB", b"pv-key", params=p)
        verdict = verify_payload(marked, "XY", b"pv-key", params=p)
        assert not verdict.present

    def test_wrong_key_not_verified(self, params):
        stream = TemperatureSensorGenerator(eta=60, seed=92).generate(20000)
        p = params.with_updates(phi=17)
        marked, _ = watermark_stream(stream, "AB", b"pv-key", params=p)
        verdict = verify_payload(marked, "AB", b"wrong", params=p)
        assert not verdict.present
