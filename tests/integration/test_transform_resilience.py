"""Resilience to the natural transforms A1–A4 (paper Sec 6.2/6.3)."""

from __future__ import annotations

import numpy as np
import pytest

from repro import detect_watermark
from repro.transforms.compose import Compose
from repro.transforms.linear import linear_transform
from repro.transforms.sampling import fixed_random_sampling, uniform_random_sampling
from repro.transforms.segmentation import segment
from repro.transforms.summarization import summarize
from tests.conftest import KEY


class TestSampling:
    @pytest.mark.parametrize("degree", [2, 3, 5, 8])
    def test_uniform_sampling_survived(self, marked_reference, params,
                                       degree):
        marked, _ = marked_reference
        sampled = uniform_random_sampling(marked, degree, rng=0)
        result = detect_watermark(sampled, 1, KEY, params=params,
                                  transform_degree=float(degree))
        assert result.bias(0) >= 15, f"degree {degree}"

    def test_extreme_sampling_below_8_percent(self, marked_reference,
                                              params):
        """The paper's headline: <8% of the stream, >97% confidence."""
        marked, _ = marked_reference
        sampled = uniform_random_sampling(marked, 13, rng=0)
        assert len(sampled) / len(marked) < 0.08
        result = detect_watermark(sampled, 1, KEY, params=params,
                                  transform_degree=13.0)
        assert result.confidence(0) > 0.97

    def test_fixed_sampling_survived(self, marked_reference, params):
        marked, _ = marked_reference
        sampled = fixed_random_sampling(marked, 4)
        result = detect_watermark(sampled, 1, KEY, params=params,
                                  transform_degree=4.0)
        assert result.bias(0) >= 12


class TestSummarization:
    @pytest.mark.parametrize("degree", [2, 3, 5])
    def test_summarization_survived(self, marked_reference, params, degree):
        """Degrees within the guaranteed resilience (active_run_length)."""
        marked, _ = marked_reference
        summarized = summarize(marked, degree)
        result = detect_watermark(summarized, 1, KEY, params=params,
                                  transform_degree=float(degree))
        assert result.bias(0) >= 10, f"degree {degree}"

    def test_paper_20_percent_summarization(self, marked_reference, params):
        """The paper's '20%' example: degree 5 keeps 1/5 of the items."""
        marked, _ = marked_reference
        summarized = summarize(marked, 5)
        result = detect_watermark(summarized, 1, KEY, params=params,
                                  transform_degree=5.0)
        assert result.confidence(0) > 0.99

    def test_degradation_beyond_guarantee(self, marked_reference, params):
        """Beyond active_run_length the bias decays toward noise —
        matching the paper's Fig 9(a) tail."""
        marked, _ = marked_reference
        strong = detect_watermark(summarize(marked, 3), 1, KEY,
                                  params=params, transform_degree=3.0)
        weak = detect_watermark(summarize(marked, 10), 1, KEY,
                                params=params, transform_degree=10.0)
        assert weak.bias(0) < strong.bias(0)


class TestSegmentation:
    def test_segment_detection(self, marked_reference, params):
        marked, _ = marked_reference
        piece = segment(marked, start=2500, length=3000)
        result = detect_watermark(piece, 1, KEY, params=params)
        assert result.bias(0) >= 10

    def test_bias_grows_with_segment_size(self, marked_reference, params):
        """Fig 10(a)'s monotone shape."""
        marked, _ = marked_reference
        biases = []
        for length in (1500, 3000, 6000):
            piece = segment(marked, start=500, length=length)
            result = detect_watermark(piece, 1, KEY, params=params)
            biases.append(result.bias(0))
        assert biases[0] <= biases[1] <= biases[2]
        assert biases[2] > biases[0]


class TestCombinedTransforms:
    def test_fig10b_sampling_plus_summarization(self, marked_reference,
                                                params):
        marked, _ = marked_reference
        pipeline = Compose([
            ("sampling-2", lambda v: uniform_random_sampling(v, 2, rng=0)),
            ("summarization-2", lambda v: summarize(v, 2)),
        ])
        attacked = pipeline(marked)
        result = detect_watermark(attacked, 1, KEY, params=params,
                                  transform_degree=4.0)
        # Random sampling destroys original adjacency before averaging,
        # so only the ~1/4 of summarized pairs that happen to average
        # adjacent originals still testify: survival is real but weaker
        # than either transform alone (compare Fig 10(b)'s drop from
        # Fig 9's individual-transform biases).
        assert result.bias(0) >= 4


class TestLinearChanges:
    def test_scaling_defeated_by_renormalization(self, reference_stream,
                                                 marked_reference, params):
        """A4: detect on a scaled copy after re-normalization."""
        marked, _ = marked_reference
        # Mallory maps the normalized stream to, say, Fahrenheit-like units.
        physical = linear_transform(marked, scale=40.0, offset=60.0)
        # The detector re-normalizes from the observed range: positive
        # affine maps are exactly invertible this way (footnote 1).
        recovered = (physical - 0.5 * (physical.min() + physical.max())) \
            / (physical.max() - physical.min()) * (marked.max() - marked.min()) \
            + 0.5 * (marked.max() + marked.min())
        assert np.allclose(recovered, marked, atol=1e-9)
        result = detect_watermark(recovered, 1, KEY, params=params)
        assert result.bias(0) >= 25
