"""The "(real data)" pipeline: synthetic-IRTF month, end to end."""

from __future__ import annotations

import numpy as np
import pytest

from repro import Normalizer, detect_watermark, watermark_stream
from repro.experiments.config import irtf_params
from repro.streams.nasa import synthetic_irtf_month
from repro.transforms.sampling import uniform_random_sampling
from repro.transforms.summarization import summarize
from tests.conftest import KEY


@pytest.fixture(scope="module")
def iparams():
    """The per-deployment tuning for the IRTF feed (see experiments)."""
    return irtf_params()


@pytest.fixture(scope="module")
def irtf_marked(iparams):
    values, meta = synthetic_irtf_month()
    normalizer = Normalizer(low=0.0, high=35.0)
    normalized = normalizer.normalize(values)
    marked, report = watermark_stream(normalized, "1", KEY, params=iparams)
    return values, normalizer, marked, report


class TestIrtfPipeline:
    def test_watermark_detectable(self, irtf_marked, iparams):
        _, _, marked, report = irtf_marked
        assert report.embedded > 10
        result = detect_watermark(marked, 1, KEY, params=iparams)
        assert result.bias(0) >= 20
        assert result.confidence(0) > 0.999

    def test_physical_units_preserved(self, irtf_marked):
        values, normalizer, marked, _ = irtf_marked
        physical = normalizer.denormalize(marked)
        # Per-reading distortion far below the sensor's usable precision.
        assert np.max(np.abs(physical - values)) < 0.01  # degrees C
        assert abs(np.mean(physical) - np.mean(values)) < 1e-3

    def test_survives_sampling(self, irtf_marked, iparams):
        _, _, marked, _ = irtf_marked
        sampled = uniform_random_sampling(marked, 4, rng=2)
        result = detect_watermark(sampled, 1, KEY, params=iparams,
                                  transform_degree=4.0)
        assert result.bias(0) >= 8

    def test_survives_summarization(self, irtf_marked, iparams):
        _, _, marked, _ = irtf_marked
        summarized = summarize(marked, 3)
        result = detect_watermark(summarized, 1, KEY, params=iparams,
                                  transform_degree=3.0)
        assert result.bias(0) >= 8

    def test_auto_degree_estimation(self, irtf_marked, iparams):
        _, _, marked, report = irtf_marked
        sampled = uniform_random_sampling(marked, 3, rng=2)
        result = detect_watermark(
            sampled, 1, KEY, params=iparams, transform_degree="auto",
            reference_subset_size=report.average_subset_size)
        assert result.bias(0) >= 8
