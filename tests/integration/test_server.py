"""Network serving layer end-to-end: round-trips, crash, drain, flow.

The acceptance contract of the serving layer:

* a remote embed -> detect round-trip over TCP is **bit-identical** to
  the in-process :class:`~repro.hub.StreamHub`;
* a server killed mid-push (transports aborted, no goodbye) and
  restarted with ``--recover`` over the same store resumes every open
  stream bit-identically — the client SDK reconnects, replays the
  unseen suffix and deduplicates redelivered outputs;
* graceful drain checkpoints everything and notifies clients;
* credit-based flow control rejects over-credit pushes with a ``flow``
  error instead of buffering unboundedly.

The server runs on a private event-loop thread; tests drive it with the
synchronous :class:`~repro.server.client.RemoteClient` — exactly the
deployment shape (client code has no asyncio in sight).
"""

from __future__ import annotations

import asyncio
import threading
import time

import numpy as np
import pytest

from repro import DetectionSession, WatermarkParams, watermark_stream
from repro.errors import RemoteError
from repro.server import protocol
from repro.server.client import RemoteClient
from repro.server.service import StreamService
from repro.streams.generators import TemperatureSensorGenerator

PARAMS = WatermarkParams(phi=5)
KEY = b"server-test-key"


def _params_dict() -> dict:
    from repro.core.serialize import params_to_dict
    return params_to_dict(PARAMS)


class ServerHarness:
    """A StreamService on a background event loop, crashable at will."""

    def __init__(self, tmp_path, **service_kwargs):
        self._store = tmp_path / "server-store"
        self._kwargs = dict(service_kwargs)
        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(target=self._run, daemon=True)
        self._thread.start()
        self.service = None
        self.port = None

    def _run(self):
        asyncio.set_event_loop(self._loop)
        self._loop.run_forever()

    def _call(self, coroutine, timeout=30):
        return asyncio.run_coroutine_threadsafe(
            coroutine, self._loop).result(timeout)

    def start(self, *, recover=False, port=0):
        """Start (or restart) a service over the same store directory."""
        self.service = StreamService(store_path=self._store, port=port,
                                     recover=recover, **self._kwargs)
        host, self.port = self._call(self.service.start())
        return host, self.port

    def crash(self):
        """SIGKILL equivalent: abort every transport, checkpoint nothing."""
        service = self.service

        async def kill():
            service._listener.close()
            for connection in list(service._connections):
                connection.abort()

        self._call(kill())
        time.sleep(0.1)

    def restart_recovered(self):
        """Bring a fresh server up on the same port with --recover."""
        port = self.port
        return self.start(recover=True, port=port)

    def drain(self):
        """Graceful SIGTERM-style drain."""
        self._call(self.service.drain())

    def stop(self):
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=5)
        self._loop.close()


@pytest.fixture()
def harness(tmp_path):
    """A running server over a durable store; stopped afterwards."""
    server = ServerHarness(tmp_path, checkpoint_every=1, credits=3)
    server.start()
    yield server
    try:
        server.drain()
    except Exception:
        pass
    server.stop()


def feed_all(session, values, chunk=500):
    """Feed a whole array in chunks; return the concatenated outputs."""
    pieces = [session.feed(values[start:start + chunk])
              for start in range(0, len(values), chunk)]
    pieces.append(session.finish())
    return np.concatenate([piece for piece in pieces if piece.size])


class TestRoundTrip:
    def test_remote_embed_detect_bit_identical(self, harness):
        """Embed + detect over TCP == the in-process session, bit for bit."""
        values = TemperatureSensorGenerator(eta=60, seed=21).generate(4000)
        reference, _ = watermark_stream(values, "10", KEY, params=PARAMS)

        host, port = harness.service.address
        with RemoteClient(host, port) as client:
            session = client.protect("s-embed", "10", KEY, params=PARAMS)
            marked = feed_all(session, values)
        assert np.array_equal(marked, reference)

        local = DetectionSession(2, KEY, params=PARAMS)
        local.feed(reference)
        local.finish()
        expected = local.result()

        with RemoteClient(host, port) as client:
            session = client.detect("s-detect", 2, KEY, params=PARAMS)
            feed_all(session, marked, chunk=700)
            remote = session.result()
        assert remote.buckets_true == expected.buckets_true
        assert remote.buckets_false == expected.buckets_false
        assert remote.wm_estimate() == expected.wm_estimate()

    def test_finished_streams_do_not_leak(self, harness):
        """After flush the stream and its checkpoint are dropped."""
        values = TemperatureSensorGenerator(eta=60, seed=22).generate(1500)
        host, port = harness.service.address
        with RemoteClient(host, port) as client:
            session = client.protect("leak-check", "1", KEY, params=PARAMS)
            feed_all(session, values)
        hub = harness.service.hub_for("default")
        assert "leak-check" not in hub
        assert "leak-check" not in hub.store
        assert len(hub.store) == 0

    def test_tenants_are_isolated(self, harness):
        """The same stream id lives independently per tenant namespace —
        including a tenant name crafted to look like another tenant's
        sidecar directory."""
        values = TemperatureSensorGenerator(eta=60, seed=23).generate(1500)
        host, port = harness.service.address
        with RemoteClient(host, port, tenant="acme") as one, \
                RemoteClient(host, port, tenant="acme.meta") as two:
            session_one = one.protect("sensor", "1", b"key-a",
                                      params=PARAMS)
            session_two = two.protect("sensor", "1", b"key-b",
                                      params=PARAMS)
            out_one = feed_all(session_one, values)
            out_two = feed_all(session_two, values)
        ref_a, _ = watermark_stream(values, "1", b"key-a", params=PARAMS)
        ref_b, _ = watermark_stream(values, "1", b"key-b", params=PARAMS)
        assert np.array_equal(out_one, ref_a)
        assert np.array_equal(out_two, ref_b)


class TestCrashRecovery:
    def test_kill_mid_push_reconnect_resume_bit_identical(self, harness):
        """The satellite contract: SIGKILLed server, restarted with
        --recover, and the client's reconnect-resume yields detection
        votes bit-identical to an uninterrupted run."""
        values = TemperatureSensorGenerator(eta=60, seed=31).generate(6000)
        marked, _ = watermark_stream(values, "10", KEY, params=PARAMS)

        local = DetectionSession(2, KEY, params=PARAMS)
        local.feed(marked)
        local.finish()
        expected = local.result()

        host, port = harness.service.address
        client = RemoteClient(host, port, reconnect_delay=0.1,
                              reconnect_attempts=80)
        try:
            embed = client.protect("pipe", "1", b"embed-key", params=PARAMS)
            detect = client.detect("court", 2, KEY, params=PARAMS)
            out = []
            for start in range(0, 3000, 500):
                out.append(embed.feed(values[start:start + 500]))
                detect.feed(marked[start:start + 500])

            harness.crash()
            harness.restart_recovered()

            for start in range(3000, 6000, 500):
                out.append(embed.feed(values[start:start + 500]))
                detect.feed(marked[start:start + 500])
            out.append(embed.finish())
            detect.finish()
            remote = detect.result()
            recovered_stream = np.concatenate(
                [piece for piece in out if piece.size])
        finally:
            client.close()

        assert client.reconnects >= 1
        # detection votes bit-identical to the uninterrupted run
        assert remote.buckets_true == expected.buckets_true
        assert remote.buckets_false == expected.buckets_false
        # and the embedding output stream too, exactly once per item
        reference, _ = watermark_stream(values, "1", b"embed-key",
                                        params=PARAMS)
        assert np.array_equal(recovered_stream, reference)

    def test_connection_abort_mid_pipelined_feed_loses_nothing(self,
                                                               harness):
        """Outputs already received when the transport dies mid-feed
        must still reach the caller exactly once (they ride the pending
        buffer, not transient local state)."""
        values = TemperatureSensorGenerator(eta=60, seed=34).generate(4000)
        host, port = harness.service.address
        service = harness.service

        original = StreamService._on_push
        state = {"count": 0}

        async def sabotage(self, connection, frame):
            await original(self, connection, frame)
            state["count"] += 1
            if state["count"] == 3:  # results 1-3 sent, then the axe
                connection.abort()

        service._on_push = sabotage.__get__(service, StreamService)
        try:
            with RemoteClient(host, port, push_items=200,
                              reconnect_delay=0.1) as client:
                session = client.protect("mid-feed", "1", KEY,
                                         params=PARAMS)
                out = [session.feed(values)]  # 20 pipelined pushes
                out.append(session.finish())
                marked = np.concatenate(
                    [piece for piece in out if piece.size])
                assert client.reconnects >= 1
        finally:
            service._on_push = original.__get__(service, StreamService)
        reference, _ = watermark_stream(values, "1", KEY, params=PARAMS)
        assert np.array_equal(marked, reference)

    def test_result_lost_to_crash_is_redelivered_from_sidecar(self,
                                                              harness):
        """A result frame the client never read, wiped out by a SIGKILL
        right after its checkpoint, is redelivered at resume from the
        persisted replay sidecar — not lost."""
        values = TemperatureSensorGenerator(eta=60, seed=35).generate(2000)
        host, port = harness.service.address
        payload = [protocol.encode_array(values[:1000]),
                   protocol.encode_array(values[1000:])]

        async def push_then_vanish():
            reader, writer = await asyncio.open_connection(host, port)
            await protocol.write_frame(writer, {
                "type": "hello", "version": protocol.PROTOCOL_VERSION})
            await protocol.read_frame(reader)
            await protocol.write_frame(writer, {
                "type": "open", "stream_id": "lossy",
                "kind": "protection", "key": protocol.encode_key(KEY),
                "watermark": "1",
                "params": _params_dict()})
            await protocol.read_frame(reader)  # open result
            await protocol.read_frame(reader)  # credit grant
            await protocol.write_frame(writer, {
                "type": "push", "stream_id": "lossy", "seq": 0,
                "delivered": 0, "values": payload[0]})
            first = await protocol.read_frame(reader)
            await protocol.read_frame(reader)  # credit
            out0 = protocol.decode_array(first["values"])
            # Second push acknowledges the first result; its own result
            # is never read — the crash eats it.
            await protocol.write_frame(writer, {
                "type": "push", "stream_id": "lossy", "seq": 1,
                "delivered": int(out0.size), "values": payload[1]})
            await asyncio.sleep(0.3)  # let the server process + ckpt
            return out0

        out0 = asyncio.run(asyncio.wait_for(push_then_vanish(), 15))
        harness.crash()
        harness.restart_recovered()
        host, port = harness.service.address

        async def resume_and_collect(delivered):
            reader, writer = await asyncio.open_connection(host, port)
            await protocol.write_frame(writer, {
                "type": "hello", "version": protocol.PROTOCOL_VERSION})
            await protocol.read_frame(reader)
            await protocol.write_frame(writer, {
                "type": "open", "stream_id": "lossy",
                "kind": "protection", "key": protocol.encode_key(KEY),
                "watermark": "1", "resume": True,
                "delivered": delivered,
                "params": _params_dict()})
            opened = await protocol.read_frame(reader)
            await protocol.read_frame(reader)  # credit grant
            assert opened["items_in"] == 2000  # checkpointed past push 2
            replay = protocol.decode_array(opened.get("values", ""))
            await protocol.write_frame(writer, {
                "type": "flush", "stream_id": "lossy",
                "delivered": delivered + int(replay.size)})
            flushed = await protocol.read_frame(reader)
            tail = protocol.decode_array(flushed["values"])
            return replay, tail

        replay, tail = asyncio.run(
            asyncio.wait_for(resume_and_collect(int(out0.size)), 15))
        marked = np.concatenate([out0, replay, tail])
        reference, _ = watermark_stream(values, "1", KEY, params=PARAMS)
        assert np.array_equal(marked, reference)

    def test_recover_refused_without_flag(self, harness, tmp_path):
        """A non-empty store without --recover must refuse to start."""
        values = TemperatureSensorGenerator(eta=60, seed=32).generate(1200)
        host, port = harness.service.address
        client = RemoteClient(host, port)
        session = client.protect("lingering", "1", KEY, params=PARAMS)
        session.feed(values)
        client.close()
        harness.crash()

        from repro.errors import ReproError
        with pytest.raises(ReproError, match="--recover"):
            harness.start(recover=False, port=0)

    def test_graceful_drain_checkpoints_open_streams(self, harness):
        """Drain writes every open stream's checkpoint to the store."""
        values = TemperatureSensorGenerator(eta=60, seed=33).generate(1500)
        host, port = harness.service.address
        client = RemoteClient(host, port)
        session = client.protect("draining", "1", KEY, params=PARAMS)
        session.feed(values[:1000])
        harness.drain()
        client.close()
        hub = harness.service.hub_for("default")
        assert "draining" in hub.store
        entry = hub.store.entry("draining")
        counters = entry["state"]["scan"]["counters"]
        assert counters["items"] == 1000


@pytest.fixture(params=["tcp-json", "tcp-binary",
                        "websocket-json", "websocket-binary"])
def matrix(request, tmp_path):
    """A running server + client kwargs for one transport x wire cell."""
    transport, wire = request.param.split("-")
    server = ServerHarness(tmp_path, checkpoint_every=1, credits=3,
                           transport=transport)
    server.start()
    yield server, {"transport": transport, "wire": wire}
    try:
        server.drain()
    except Exception:
        pass
    server.stop()


class TestTransportWireMatrix:
    """The core serving contracts on every transport x wire cell."""

    def test_round_trip_bit_identical(self, matrix):
        """Embed + detect through each cell == in-process, bit for bit."""
        harness, kwargs = matrix
        values = TemperatureSensorGenerator(eta=60, seed=51).generate(3000)
        reference, _ = watermark_stream(values, "10", KEY, params=PARAMS)
        host, port = harness.service.address
        with RemoteClient(host, port, **kwargs) as client:
            session = client.protect("m-embed", "10", KEY, params=PARAMS)
            marked = feed_all(session, values)
            stats = client._async.wire_stats()
        assert np.array_equal(marked, reference)
        assert stats["transport"] == kwargs["transport"]
        assert stats["wire"] == protocol.resolve_wire(kwargs["wire"])
        assert stats["frames_sent"] > 0
        assert stats["bytes_received"] > 0

        local = DetectionSession(2, KEY, params=PARAMS)
        local.feed(reference)
        local.finish()
        expected = local.result()
        with RemoteClient(host, port, **kwargs) as client:
            session = client.detect("m-detect", 2, KEY, params=PARAMS)
            feed_all(session, marked, chunk=700)
            remote = session.result()
        assert remote.buckets_true == expected.buckets_true
        assert remote.wm_estimate() == expected.wm_estimate()

    def test_kill_recover_reconnect_resume(self, matrix):
        """SIGKILL + --recover + reconnect-resume works on every cell."""
        harness, kwargs = matrix
        values = TemperatureSensorGenerator(eta=60, seed=52).generate(4000)
        host, port = harness.service.address
        client = RemoteClient(host, port, reconnect_delay=0.1,
                              reconnect_attempts=80, **kwargs)
        try:
            session = client.protect("m-pipe", "1", KEY, params=PARAMS)
            out = [session.feed(values[start:start + 500])
                   for start in range(0, 2000, 500)]
            harness.crash()
            harness.restart_recovered()
            out += [session.feed(values[start:start + 500])
                    for start in range(2000, 4000, 500)]
            out.append(session.finish())
            marked = np.concatenate([piece for piece in out if piece.size])
        finally:
            client.close()
        assert client.reconnects >= 1
        reference, _ = watermark_stream(values, "1", KEY, params=PARAMS)
        assert np.array_equal(marked, reference)

    def test_graceful_drain_checkpoints(self, matrix):
        """Drain checkpoints open streams on every cell."""
        harness, kwargs = matrix
        values = TemperatureSensorGenerator(eta=60, seed=53).generate(1500)
        host, port = harness.service.address
        client = RemoteClient(host, port, **kwargs)
        session = client.protect("m-drain", "1", KEY, params=PARAMS)
        session.feed(values[:1000])
        harness.drain()
        client.close()
        hub = harness.service.hub_for("default")
        assert "m-drain" in hub.store
        counters = hub.store.entry("m-drain")["state"]["scan"]["counters"]
        assert counters["items"] == 1000


class TestWireNegotiation:
    def test_old_json_client_against_binary_capable_server(self, harness):
        """A pre-negotiation client: HELLO carries no wire request, the
        reply must carry no wire fields back (byte-compat), and the
        whole conversation stays on wire-1 JSON — bit-identical
        outputs."""
        values = TemperatureSensorGenerator(eta=60, seed=54).generate(2000)
        host, port = harness.service.address

        async def legacy_roundtrip():
            reader, writer = await asyncio.open_connection(host, port)
            await protocol.write_frame(writer, {
                "type": "hello", "version": protocol.PROTOCOL_VERSION})
            hello = await protocol.read_frame(reader)
            assert "wire" not in hello
            assert "transport" not in hello
            await protocol.write_frame(writer, {
                "type": "open", "stream_id": "legacy",
                "kind": "protection", "key": protocol.encode_key(KEY),
                "watermark": "1", "params": _params_dict()})
            await protocol.read_frame(reader)  # open result
            await protocol.read_frame(reader)  # credit grant
            await protocol.write_frame(writer, {
                "type": "push", "stream_id": "legacy", "seq": 0,
                "delivered": 0,
                "values": protocol.encode_array(values)})
            result = await protocol.read_frame(reader)
            assert isinstance(result["values"], str)  # base64, not binary
            await protocol.read_frame(reader)  # credit
            await protocol.write_frame(writer, {
                "type": "flush", "stream_id": "legacy",
                "delivered": result["items_out"]})
            flushed = await protocol.read_frame(reader)
            writer.close()
            return np.concatenate([
                protocol.decode_array(result["values"]),
                protocol.decode_array(flushed["values"])])

        marked = asyncio.run(asyncio.wait_for(legacy_roundtrip(), 15))
        reference, _ = watermark_stream(values, "1", KEY, params=PARAMS)
        assert np.array_equal(marked, reference)
        assert harness.service.wire_sessions.get(1, 0) >= 1

    def test_json_pinned_server_downgrades_binary_client(self, tmp_path):
        """A server capped at wire 1 grants 1 to a binary-asking client,
        and the session still round-trips bit-identically."""
        server = ServerHarness(tmp_path, checkpoint_every=1,
                               max_wire="json")
        server.start()
        try:
            values = TemperatureSensorGenerator(eta=60,
                                                seed=55).generate(1500)
            host, port = server.service.address
            with RemoteClient(host, port, wire="binary") as client:
                session = client.protect("capped", "1", KEY, params=PARAMS)
                marked = feed_all(session, values)
                assert client._async.negotiated_wire == 1
            reference, _ = watermark_stream(values, "1", KEY,
                                            params=PARAMS)
            assert np.array_equal(marked, reference)
        finally:
            try:
                server.drain()
            except Exception:
                pass
            server.stop()

    def test_status_reports_transport_and_wire(self, harness):
        """The operator status surfaces the negotiated axes."""
        host, port = harness.service.address
        with RemoteClient(host, port, wire="binary") as client:
            client.protect("st", "1", KEY, params=PARAMS)
            status = harness.service.status()
        assert status["transport"] == "tcp"
        assert status["max_wire"] == protocol.MAX_WIRE
        assert status["wire_sessions"].get("2") == 1
        assert status["tenants"] == ["default"]


class TestFlowControlAndErrors:
    def test_flow_control_paces_large_feeds(self, harness):
        """A feed far larger than the credit window completes correctly
        (pushes are paced by CREDIT frames, not client buffering)."""
        values = TemperatureSensorGenerator(eta=60, seed=41).generate(4000)
        host, port = harness.service.address
        with RemoteClient(host, port, push_items=100) as client:
            session = client.protect("paced", "1", KEY, params=PARAMS)
            marked = np.concatenate(
                [piece for piece in (session.feed(values),
                                     session.finish()) if piece.size])
        reference, _ = watermark_stream(values, "1", KEY, params=PARAMS)
        assert np.array_equal(marked, reference)

    def test_over_credit_push_gets_flow_error(self, harness):
        """A push arriving with the stream's credit window exhausted is
        refused with a ``flow`` error and dropped, not buffered.

        The serial handler returns each credit before reading the next
        frame, so the window cannot be over-drawn from outside; the
        test zeroes the server-side counter directly (the state a
        concurrent handler variant would reach) and then pushes.
        """
        host, port = harness.service.address
        service = harness.service

        async def overpush():
            reader, writer = await asyncio.open_connection(host, port)
            await protocol.write_frame(writer, {
                "type": "hello", "version": protocol.PROTOCOL_VERSION})
            hello = await protocol.read_frame(reader)
            assert hello["credits"] == 3
            await protocol.write_frame(writer, {
                "type": "open", "stream_id": "greedy",
                "kind": "protection", "key": protocol.encode_key(KEY),
                "watermark": "1"})
            frames = [await protocol.read_frame(reader)
                      for _ in range(2)]  # open result + credit grant
            assert {frame["type"] for frame in frames} \
                == {"result", "credit"}
            (connection,) = service._connections
            connection.credits["greedy"] = 0  # window exhausted
            await protocol.write_frame(writer, {
                "type": "push", "stream_id": "greedy", "seq": 0,
                "values": protocol.encode_array(np.zeros(4))})
            while True:
                frame = await protocol.read_frame(reader)
                if frame["type"] == "error":
                    return frame

        error = asyncio.run(asyncio.wait_for(overpush(), 15))
        assert error["code"] == "flow"
        assert "credit" in error["message"]

    def test_duplicate_open_rejected(self, harness):
        host, port = harness.service.address
        with RemoteClient(host, port) as one:
            one.protect("dup", "1", KEY, params=PARAMS)
            with RemoteClient(host, port) as two:
                with pytest.raises(RemoteError,
                                   match="another connection"):
                    two.protect("dup", "1", KEY, params=PARAMS)

    def test_resume_with_wrong_key_rejected(self, harness):
        """Resuming a live stream with a different key is refused."""
        values = TemperatureSensorGenerator(eta=60, seed=42).generate(800)
        host, port = harness.service.address
        client = RemoteClient(host, port)
        session = client.protect("keyed", "1", KEY, params=PARAMS)
        session.feed(values)
        client.close()

        async def steal():
            reader, writer = await asyncio.open_connection(host, port)
            await protocol.write_frame(writer, {
                "type": "hello", "version": protocol.PROTOCOL_VERSION})
            await protocol.read_frame(reader)
            await protocol.write_frame(writer, {
                "type": "open", "stream_id": "keyed",
                "kind": "protection",
                "key": protocol.encode_key(b"wrong-key"),
                "watermark": "1", "resume": True})
            return await protocol.read_frame(reader)

        frame = asyncio.run(asyncio.wait_for(steal(), 15))
        assert frame["type"] == "error"
        assert "key mismatch" in frame["message"]

    def test_fresh_open_of_existing_stream_rejected(self, harness):
        """Re-opening an existing stream without resume is an error."""
        values = TemperatureSensorGenerator(eta=60, seed=43).generate(800)
        host, port = harness.service.address
        client = RemoteClient(host, port)
        session = client.protect("twice", "1", KEY, params=PARAMS)
        session.feed(values)
        client.close()

        with RemoteClient(host, port) as again:
            with pytest.raises(RemoteError, match="resume"):
                again.protect("twice", "1", KEY, params=PARAMS)

    def test_wrong_version_refused(self, harness):
        host, port = harness.service.address

        async def bad_hello():
            reader, writer = await asyncio.open_connection(host, port)
            await protocol.write_frame(writer, {"type": "hello",
                                                "version": 999})
            return await protocol.read_frame(reader)

        frame = asyncio.run(asyncio.wait_for(bad_hello(), 15))
        assert frame["type"] == "error"
        assert frame["code"] == "version"


class TestObservability:
    """The STATUS surface: live snapshots on every cell, even draining."""

    def test_status_matrix_reports_labeled_traffic(self, matrix):
        """STATUS round-trips on every transport x wire cell and the
        snapshot carries non-zero per-cell frame counters plus the
        tenant's per-stream health stats."""
        harness, kwargs = matrix
        values = TemperatureSensorGenerator(eta=60, seed=61).generate(1500)
        host, port = harness.service.address
        with RemoteClient(host, port, **kwargs) as client:
            session = client.protect("obs", "1", KEY, params=PARAMS)
            for start in range(0, 1500, 500):
                session.feed(values[start:start + 500])
            # Before finish: a flushed stream is evicted from the hub
            # (and from the stats), so the live snapshot is the one
            # carrying per-stream health.
            snapshot = client.status()
            session.finish()
        assert snapshot["server"]["draining"] is False
        assert snapshot["server"]["pushes"] >= 3
        assert snapshot["server"]["uptime_seconds"] > 0

        stream = snapshot["tenants"]["default"]["stats"]["obs"]
        assert stream["items_in"] == 1500
        assert stream["checkpoint_lag"] == 0  # checkpoint_every=1
        assert stream["last_checkpoint_ts"] is not None

        wire = protocol.codec_for(
            protocol.resolve_wire(kwargs["wire"])).name
        cell = f"transport={kwargs['transport']},wire={wire}"
        counters = snapshot["metrics"]["counters"]
        assert counters[f"server_frames_in_total{{{cell}}}"] > 0
        assert counters[f"server_frames_out_total{{{cell}}}"] > 0
        assert counters[f"server_bytes_in_total{{{cell}}}"] > 0
        push_us = snapshot["metrics"]["histograms"][
            "hub_push_us{tenant=default}"]
        assert push_us["count"] >= 3
        assert sum(push_us["buckets"].values()) == push_us["count"]

    def test_status_while_draining_gets_final_snapshot(self, harness):
        """ISSUE 9 bugfix guard: a STATUS request racing a drain must be
        answered with a well-formed final snapshot before the BYE — not
        a connection reset."""
        values = TemperatureSensorGenerator(eta=60, seed=62).generate(1000)
        host, port = harness.service.address
        with RemoteClient(host, port) as feeder:
            session = feeder.protect("drainee", "1", KEY, params=PARAMS)
            session.feed(values)

            async def status_racing_drain():
                reader, writer = await asyncio.open_connection(host, port)
                await protocol.write_frame(writer, {
                    "type": "hello",
                    "version": protocol.PROTOCOL_VERSION})
                await protocol.read_frame(reader)
                drain = asyncio.ensure_future(
                    harness.service.drain("sigterm"))
                # The drain is now racing our request down the same
                # connection; the grace window must cover it.
                await protocol.write_frame(writer, {"type": "status"})
                frames = []
                while True:
                    frame = await protocol.read_frame(reader)
                    frames.append(frame)
                    if frame["type"] == "bye":
                        break
                await drain
                return frames

            frames = harness._call(
                asyncio.wait_for(status_racing_drain(), 20))
        types = [frame["type"] for frame in frames]
        assert "status" in types and types[-1] == "bye"
        snapshot = frames[types.index("status")]["payload"]
        assert snapshot["server"]["draining"] is True
        assert "drainee" in snapshot["tenants"]["default"]["stats"]

    def test_simulate_crash_resumes_bit_identically(self, harness):
        """The loadgen's crash primitive: an aborted transport mid-feed
        redials, resumes, and the output stays bit-identical."""
        values = TemperatureSensorGenerator(eta=60, seed=63).generate(2000)
        host, port = harness.service.address
        with RemoteClient(host, port, reconnect_delay=0.05) as client:
            session = client.protect("crashy", "1", KEY, params=PARAMS)
            out = [session.feed(values[:500])]
            client.simulate_crash()
            out += [session.feed(values[start:start + 500])
                    for start in range(500, 2000, 500)]
            out.append(session.finish())
            marked = np.concatenate([p for p in out if p.size])
        reference, _ = watermark_stream(values, "1", KEY, params=PARAMS)
        assert np.array_equal(marked, reference)
        assert client.reconnects >= 1

    def test_loadgen_smoke(self, tmp_path):
        """A tiny churn fleet: exactly-once holds, latency is measured,
        and the spawned server's lifetime counters ride along."""
        from repro.obs.loadgen import run_loadgen

        summary = run_loadgen(workers=3, pushes=6, chunk=128,
                              crash_every=2, verify_bits=True)
        assert summary["verify_failures"] == 0
        assert summary["worker_errors"] == []
        assert summary["items"] == 3 * 6 * 128
        assert summary["crashes"] > 0
        assert summary["resumes"] == summary["crashes"]
        assert summary["push_ms"]["count"] == 3 * (6 + 1)  # feeds + finish
        assert summary["push_ms"]["p50"] is not None
        assert summary["push_ms"]["p99"] is not None
        assert summary["server"]["pushes"] >= 3 * 6


class TestServeJsonLifecycle:
    """`repro serve --json --status-interval`: the operator surface as a
    real subprocess — event-tagged lines, periodic snapshots, and a
    SIGTERM drain that still answers a final STATUS."""

    def test_event_lines_and_sigterm_drain(self, tmp_path):
        import json
        import signal
        import subprocess
        import sys

        server = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "--port", "0",
             "--store", str(tmp_path / "store"), "--json",
             "--status-interval", "0.2"],
            stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
            env={"PYTHONPATH": "src", "PATH": "/usr/bin:/bin"},
            cwd="/root/repo")
        try:
            ready = json.loads(server.stdout.readline())
            assert ready["event"] == "ready"
            port = ready["serving"]["port"]

            values = TemperatureSensorGenerator(
                eta=60, seed=64).generate(1200)
            with RemoteClient("127.0.0.1", port) as client:
                session = client.protect("ops", "1", KEY, params=PARAMS)
                session.feed(values)
                snapshot = client.status()
            assert snapshot["server"]["pushes"] >= 1

            status_line = json.loads(server.stdout.readline())
            assert status_line["event"] == "status"
            assert status_line["status"]["server"]["draining"] is False

            server.send_signal(signal.SIGTERM)
            events = [json.loads(line) for line in server.stdout]
            assert server.wait(timeout=15) == 0
            assert events[-1]["event"] == "drained"
            assert events[-1]["drained"] is True
            assert events[-1]["pushes"] >= 1
        finally:
            if server.poll() is None:
                server.kill()
            server.stdout.close()
            server.stderr.close()
