"""Tests for multi-pass offline detection (detect_best)."""

from __future__ import annotations

import pytest

from repro.core.detector import detect_best
from repro.transforms.sampling import uniform_random_sampling
from tests.conftest import KEY


class TestDetectBest:
    def test_picks_rho_one_for_untransformed(self, marked_reference,
                                             params):
        marked, report = marked_reference
        result, degree = detect_best(
            marked, 1, KEY, params=params,
            reference_subset_size=report.average_subset_size)
        assert degree == pytest.approx(1.0, abs=0.3)
        assert result.bias(0) >= 30

    def test_picks_estimated_rho_for_sampled(self, marked_reference,
                                             params):
        marked, report = marked_reference
        sampled = uniform_random_sampling(marked, 4, rng=1)
        result, degree = detect_best(
            sampled, 1, KEY, params=params,
            reference_subset_size=report.average_subset_size)
        assert degree > 1.5  # the shrinkage estimate won
        assert result.bias(0) >= 10

    def test_explicit_candidates(self, marked_reference, params):
        marked, _ = marked_reference
        result, degree = detect_best(marked, 1, KEY, params=params,
                                     candidate_degrees=[1.0, 3.0, 6.0])
        assert degree == 1.0
        assert result.bias(0) >= 30

    def test_expected_payload_scores_signed(self, marked_reference,
                                            params):
        """With the payload known, scoring favours evidence toward it."""
        marked, report = marked_reference
        with_expected, _ = detect_best(
            marked, 1, KEY, params=params, expected="1",
            reference_subset_size=report.average_subset_size)
        assert with_expected.bias(0) >= 30

    def test_single_default_candidate(self, marked_reference, params):
        marked, _ = marked_reference
        result, degree = detect_best(marked, 1, KEY, params=params)
        assert degree == 1.0
        assert result.bias(0) >= 30
