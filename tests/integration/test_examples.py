"""Smoke tests: the shipped examples must run and tell their story."""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parents[2] / "examples"


def run_example(name: str, timeout: int = 300) -> str:
    """Execute one example in a fresh interpreter; return its stdout."""
    completed = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / name)],
        capture_output=True, text=True, timeout=timeout)
    assert completed.returncode == 0, completed.stderr
    return completed.stdout


class TestExamples:
    def test_quickstart_tells_the_full_story(self):
        out = run_example("quickstart.py")
        assert "court confidence" in out
        assert "after 3x sampling" in out
        assert "unwatermarked data" in out
        # The clean-data verdict must be "undefined".
        assert "None" in out.rsplit("unwatermarked", 1)[1]

    def test_sensor_fleet_survives_the_crash(self):
        out = run_example("sensor_fleet.py")
        assert "then CRASH" in out
        assert "12/12 sensor streams bit-identical" in out
        assert "payload read back as '10'" in out
        assert "evictions" in out

    def test_remote_fleet_survives_the_sigkill(self):
        out = run_example("remote_fleet.py")
        assert "SIGKILLed mid-run" in out
        assert "8/8 sensor streams bit-identical" in out
        assert "votes bit-identical" in out
        assert "exit 0" in out

    def test_streaming_relay_accumulates_evidence(self):
        out = run_example("streaming_relay.py")
        assert "producer: streamed 12000 watermarked items" in out
        assert "verdict: bias" in out
        assert "exact null probability" in out

    @pytest.mark.slow
    def test_attack_gauntlet_reports_every_attack(self):
        out = run_example("attack_gauntlet.py")
        for name in ("sampling-4", "summarization-5", "epsilon-50-10",
                     "targeted-extremes"):
            assert name in out

    @pytest.mark.slow
    def test_nasa_pipeline_recovers_payload(self):
        out = run_example("nasa_irtf_pipeline.py")
        assert "decided-bit match  : 100%" in out
        assert "'IC'" in out
