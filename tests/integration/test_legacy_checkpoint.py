"""Acceptance: a checkpoint written by the seed revision still restores.

``tests/fixtures/legacy_checkpoint_v1.json`` holds a real
:class:`ProtectionSession` checkpoint serialized by the pre-vectorization
(PR 1) implementation at stream item 2048 — an ingestion-batch boundary —
together with the sha256 of the seed's full-run watermarked output and
its detection evidence.  The current implementation must (a) accept the
old JSON unchanged, (b) continue the scan to a bit-identical stream, and
(c) emit checkpoints with the same schema, so the formats remain
interchangeable across revisions.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path

import numpy as np
import pytest

from repro import ProtectionSession, detect_watermark
from repro.core.scanner import ScanCounters
from repro.core.serialize import params_from_dict
from repro.streams import TemperatureSensorGenerator

FIXTURE = (Path(__file__).parent.parent / "fixtures"
           / "legacy_checkpoint_v1.json")


@pytest.fixture(scope="module")
def fixture() -> dict:
    with open(FIXTURE) as handle:
        return json.load(handle)


@pytest.fixture(scope="module")
def stream(fixture) -> np.ndarray:
    generator = fixture["generator"]
    return TemperatureSensorGenerator(
        eta=generator["eta"],
        seed=generator["seed"]).generate(generator["n"])


class TestLegacyCheckpoint:
    def test_resumes_to_seed_identical_output(self, fixture, stream):
        key = fixture["key"].encode()
        chunk = fixture["chunk"]
        checkpoint_at = fixture["checkpoint_at"]
        params = params_from_dict(fixture["state"]["config"]["params"])

        fresh = ProtectionSession(fixture["watermark"], key, params=params)
        pieces = [fresh.feed(stream[i:i + chunk])
                  for i in range(0, checkpoint_at, chunk)]
        resumed = ProtectionSession.from_state(fixture["state"], key)
        pieces += [resumed.feed(stream[i:i + chunk])
                   for i in range(checkpoint_at, len(stream), chunk)]
        pieces.append(resumed.finish())
        marked = np.concatenate(pieces)

        assert hashlib.sha256(marked.tobytes()).hexdigest() \
            == fixture["marked_sha256"]

        detection = detect_watermark(marked, len(fixture["watermark"]),
                                     key, params=params)
        assert [detection.bias(i) for i in range(detection.wm_length)] \
            == fixture["bias"]
        assert [detection.votes(i) for i in range(detection.wm_length)] \
            == fixture["votes"]

    def test_checkpoint_schema_unchanged(self, fixture, stream):
        """New checkpoints carry exactly the legacy keys and shapes."""
        key = fixture["key"].encode()
        params = params_from_dict(fixture["state"]["config"]["params"])
        session = ProtectionSession(fixture["watermark"], key,
                                    params=params)
        session.feed(stream[:fixture["chunk"]])
        state = session.to_state()

        def shape(node):
            if isinstance(node, dict):
                return {k: shape(v) for k, v in sorted(node.items())}
            if isinstance(node, bool):
                return "bool"
            if isinstance(node, (int, float)):
                return "number"
            return type(node).__name__

        assert shape(state) == shape(fixture["state"])
        # and they stay valid plain JSON
        json.dumps(state)

    def test_counters_tolerate_missing_and_unknown_fields(self, fixture):
        """Forward/backward counter compatibility (docstring contract)."""
        recorded = dict(fixture["state"]["scan"]["counters"])
        removed = recorded.pop("missed_evictions")
        recorded["counter_from_the_future"] = 7
        restored = ScanCounters.from_dict(recorded)
        assert restored.missed_evictions == 0
        assert restored.items == fixture["state"]["scan"]["counters"]["items"]
        assert not hasattr(restored, "counter_from_the_future")
        # a fully-populated dict still round-trips exactly
        assert ScanCounters.from_dict(
            fixture["state"]["scan"]["counters"]).to_dict() \
            == fixture["state"]["scan"]["counters"]
        assert removed == 0  # the fixture scan missed nothing
